// Massive-pipeline suite (ctest label: pipeline) — DESIGN.md §12.
//
// Covers the storage substrate (bit-packed records, CRC-verified
// mmap'd segments, atomic manifests), the sharded dedup set's exact
// parity with core::PatternLibrary, and the headline crash-equivalence
// property: a run killed at ANY stage boundary (every
// pipeline.checkpoint.* site plus the io.atomic.* writer sites)
// resumes to the byte-identical final store an uninterrupted run
// produces — at DP_THREADS=1 and 8.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/flows.hpp"
#include "core/pattern_library.hpp"
#include "core/pipeline.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "geometry/design_rules.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "pipeline/massive.hpp"
#include "pipeline/packed.hpp"
#include "pipeline/pattern_store.hpp"
#include "pipeline/sharded_set.hpp"
#include "serve/metrics.hpp"
#include "squish/canonical.hpp"
#include "squish/hash.hpp"
#include "testutil.hpp"

namespace {

using dp::pipeline::MassiveConfig;
using dp::pipeline::PackedPattern;
using dp::pipeline::SegmentBuilder;
using dp::pipeline::SegmentInfo;
using dp::pipeline::SegmentReader;
using dp::pipeline::ShardedPatternSet;
using dp::pipeline::StoreManifest;
using dp::test::ScopedTempDir;

dp::squish::Topology randomTopology(dp::Rng& rng, int maxDim,
                                    double density) {
  const int rows = rng.uniformInt(1, maxDim);
  const int cols = rng.uniformInt(1, maxDim);
  dp::squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      t.set(r, c, rng.bernoulli(density) ? 1 : 0);
  return t;
}

// ------------------------------------------------- packed records

TEST(PackedPattern, RoundTripsArbitraryTopologies) {
  dp::Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const dp::squish::Topology t = randomTopology(rng, 24, 0.4);
    const PackedPattern p = dp::pipeline::pack(t);
    EXPECT_EQ(p.cx(), t.cols());
    EXPECT_EQ(p.cy(), t.rows());
    EXPECT_EQ(dp::pipeline::unpack(p), t);
  }
}

TEST(PackedPattern, RejectsEmptyAndOversized) {
  EXPECT_THROW((void)dp::pipeline::pack(dp::squish::Topology()),
               std::invalid_argument);
  EXPECT_THROW((void)dp::pipeline::pack(dp::squish::Topology(256, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)dp::pipeline::pack(dp::squish::Topology(1, 256)),
               std::invalid_argument);
}

TEST(PackedPattern, RecordStreamRoundTrips) {
  dp::Rng rng(123);
  std::vector<std::uint64_t> hashes;
  std::vector<PackedPattern> packs;
  std::string buffer;
  for (int i = 0; i < 100; ++i) {
    const dp::squish::Topology canon =
        dp::squish::canonicalize(randomTopology(rng, 12, 0.5));
    hashes.push_back(dp::squish::hashTopology(canon));
    packs.push_back(dp::pipeline::pack(canon));
    dp::pipeline::appendRecord(buffer, hashes.back(), packs.back());
  }
  dp::pipeline::RecordCursor cursor(buffer.data(), buffer.size());
  std::size_t i = 0;
  std::uint64_t hash = 0;
  PackedPattern p;
  while (!cursor.done()) {
    cursor.next(hash, p);
    ASSERT_LT(i, packs.size());
    EXPECT_EQ(hash, hashes[i]);
    EXPECT_EQ(p, packs[i]);
    ++i;
  }
  EXPECT_EQ(i, packs.size());
}

TEST(PackedPattern, CursorRejectsTruncatedRecords) {
  std::string buffer;
  dp::pipeline::appendRecord(
      buffer, 42, dp::pipeline::pack(dp::test::topo({"##", ".#"})));
  std::uint64_t hash = 0;
  PackedPattern p;
  // Every strict prefix of one record is a truncation.
  for (std::size_t cut = 1; cut < buffer.size(); ++cut) {
    dp::pipeline::RecordCursor cursor(buffer.data(), cut);
    EXPECT_THROW(cursor.next(hash, p), std::runtime_error) << cut;
  }
}

TEST(PackedPattern, CursorRejectsZeroDimensions) {
  // Hand-crafted record claiming 0x0 dims: 8 hash bytes + rows + cols.
  const std::string bogus("\0\0\0\0\0\0\0\0\0\0", 10);
  dp::pipeline::RecordCursor cursor(bogus.data(), bogus.size());
  std::uint64_t hash = 0;
  PackedPattern p;
  EXPECT_THROW(cursor.next(hash, p), std::runtime_error);
}

// ------------------------------------------------- sharded dedup set

TEST(ShardedSet, MatchesPatternLibraryExactly) {
  dp::Rng rng(7);
  dp::core::PatternLibrary library;
  ShardedPatternSet set;
  for (int i = 0; i < 3000; ++i) {
    const dp::squish::Topology t = randomTopology(rng, 5, 0.5);
    EXPECT_EQ(set.insert(t), library.add(t));
  }
  EXPECT_EQ(set.size(), library.size());
  // Same Definition-2 diversity, bit-identical accumulation.
  EXPECT_DOUBLE_EQ(set.diversity(), library.diversity());
  // Same enumeration contract: ascending canonical hash, collision
  // buckets in first-insertion order.
  const std::vector<dp::squish::Topology> patterns = library.patterns();
  std::size_t i = 0;
  set.forEach([&](std::uint64_t hash, const PackedPattern& p) {
    ASSERT_LT(i, patterns.size());
    EXPECT_EQ(hash, dp::squish::hashTopology(patterns[i]));
    EXPECT_EQ(dp::pipeline::unpack(p), patterns[i]);
    ++i;
  });
  EXPECT_EQ(i, patterns.size());
}

TEST(ShardedSet, ConcurrentInsertsMatchSerial) {
  dp::Rng rng(21);
  std::vector<dp::squish::Topology> topologies;
  topologies.reserve(4000);
  for (int i = 0; i < 4000; ++i)
    topologies.push_back(randomTopology(rng, 5, 0.5));

  ShardedPatternSet serial;
  for (const auto& t : topologies) serial.insert(t);

  dp::test::ScopedDpThreads guard(8);
  ShardedPatternSet concurrent;
  dp::parallelFor(static_cast<long>(topologies.size()), 64,
                  [&](long i0, long i1) {
                    for (long i = i0; i < i1; ++i)
                      concurrent.insert(
                          topologies[static_cast<std::size_t>(i)]);
                  });
  EXPECT_EQ(concurrent.size(), serial.size());
  EXPECT_EQ(concurrent.shardSizes(), serial.shardSizes());
  EXPECT_DOUBLE_EQ(concurrent.diversity(), serial.diversity());
  serial.forEach([&](std::uint64_t hash, const PackedPattern& p) {
    EXPECT_TRUE(concurrent.containsPacked(hash, p));
  });
}

TEST(ShardedSet, ShannonFromCountsClosedForms) {
  using Counts = std::map<std::pair<int, int>, std::uint64_t>;
  EXPECT_NEAR(dp::pipeline::shannonFromCounts(Counts{{{1, 1}, 10}}), 0.0,
              1e-12);
  EXPECT_NEAR(dp::pipeline::shannonFromCounts(Counts{{{1, 1}, 5},
                                                     {{1, 2}, 5},
                                                     {{2, 1}, 5},
                                                     {{2, 2}, 5}}),
              2.0, 1e-12);
  // p = {1/2, 1/4, 1/4} -> H = 1.5 bits.
  EXPECT_NEAR(dp::pipeline::shannonFromCounts(
                  Counts{{{1, 1}, 2}, {{1, 2}, 1}, {{2, 1}, 1}}),
              1.5, 1e-12);
  EXPECT_NEAR(dp::pipeline::shannonFromCounts(Counts{}), 0.0, 1e-12);
}

// ------------------------------------------------- segments + manifest

TEST(PatternStore, SegmentRoundTripsAndVerifies) {
  ScopedTempDir dir("dp_pipeline_segment");
  dp::Rng rng(5);
  SegmentBuilder builder;
  std::vector<std::uint64_t> hashes;
  std::vector<PackedPattern> packs;
  for (int i = 0; i < 50; ++i) {
    const dp::squish::Topology canon =
        dp::squish::canonicalize(randomTopology(rng, 8, 0.4));
    hashes.push_back(dp::squish::hashTopology(canon));
    packs.push_back(dp::pipeline::pack(canon));
    builder.add(hashes.back(), packs.back());
  }
  const SegmentInfo info =
      dp::pipeline::writeSegment(dir.path(), 0, builder);
  EXPECT_EQ(info.path, "seg-000000.bin");
  EXPECT_EQ(info.patterns, 50u);

  SegmentReader reader(dir.path(), info);
  std::size_t i = 0;
  reader.forEach([&](std::uint64_t hash, const PackedPattern& p) {
    EXPECT_EQ(hash, hashes[i]);
    EXPECT_EQ(p, packs[i]);
    ++i;
  });
  EXPECT_EQ(i, 50u);
}

TEST(PatternStore, SegmentReaderRejectsCorruptionAndTruncation) {
  ScopedTempDir dir("dp_pipeline_corrupt");
  SegmentBuilder builder;
  const dp::squish::Topology canon =
      dp::squish::canonicalize(dp::test::topo({"#.#", "###"}));
  for (int i = 0; i < 20; ++i)
    builder.add(dp::squish::hashTopology(canon) + i,
                dp::pipeline::pack(canon));
  const SegmentInfo info =
      dp::pipeline::writeSegment(dir.path(), 3, builder);
  const std::string path = dir.file(info.path);

  // Flip one byte in the middle: CRC mismatch.
  {
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      bytes = ss.str();
    }
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(SegmentReader(dir.path(), info), std::runtime_error);

  // Truncate: size mismatch, rejected before any CRC work.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "short";
  }
  EXPECT_THROW(SegmentReader(dir.path(), info), std::runtime_error);
}

TEST(PatternStore, SegmentOpenFaultIsInjectable) {
  ScopedTempDir dir("dp_pipeline_segfault");
  SegmentBuilder builder;
  const dp::squish::Topology canon =
      dp::squish::canonicalize(dp::test::topo({"#.#", "###"}));
  builder.add(dp::squish::hashTopology(canon),
              dp::pipeline::pack(canon));
  const SegmentInfo info =
      dp::pipeline::writeSegment(dir.path(), 0, builder);

  dp::faults::arm("pipeline.segment.open", 4, 1.0);
  EXPECT_THROW(SegmentReader(dir.path(), info), std::runtime_error);
  dp::faults::disarm("pipeline.segment.open");

  // Disarmed, the same segment opens and replays in full.
  SegmentReader reader(dir.path(), info);
  std::size_t count = 0;
  reader.forEach(
      [&](std::uint64_t, const PackedPattern&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(PatternStore, ManifestRoundTripsExactly) {
  ScopedTempDir dir("dp_pipeline_manifest");
  EXPECT_FALSE(dp::pipeline::loadManifest(dir.path()).has_value());

  StoreManifest m;
  m.seed = 0xdeadbeefcafef00dULL;  // needs exact > 2^53 serialization
  m.count = 1'000'000;
  m.batchSize = 256;
  m.checkpointEvery = 65536;
  m.patternsPerSegment = 65536;
  m.cursor = 131072;
  m.legal = 98304;
  m.unique = 40000;
  m.shardSizes.assign(64, 625);
  m.segments.push_back({"seg-000000.bin", 30000, 400000, 0x12345678U});
  m.segments.push_back({"seg-000001.bin", 10000, 140000, 0x9abcdef0U});
  dp::pipeline::commitManifest(dir.path(), m);

  const auto loaded = dp::pipeline::loadManifest(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, m);
}

TEST(PatternStore, ManifestRejectsWrongFormat) {
  ScopedTempDir dir("dp_pipeline_badmanifest");
  {
    std::ofstream out(dir.file("manifest.json"));
    out << "{\"format\": \"not-a-pipeline\"}\n";
  }
  EXPECT_THROW((void)dp::pipeline::loadManifest(dir.path()),
               std::runtime_error);
}

// ------------------------------------------------- seeded corpus pin

TEST(SeededCorpus, CanonicalHashesAndRecordsAreStable) {
  struct CorpusEntry {
    std::uint64_t hash;
    std::uint32_t crc;
  };
  static constexpr CorpusEntry kCorpus[] = {
#include "fixtures/canonical_hashes.inc"
  };
  dp::Rng rng(424242);
  for (const CorpusEntry& expected : kCorpus) {
    const dp::squish::Topology t = randomTopology(rng, 10, 0.4);
    const dp::squish::Topology canon = dp::squish::canonicalize(t);
    const std::uint64_t hash = dp::squish::hashTopology(canon);
    std::string record;
    dp::pipeline::appendRecord(record, hash, dp::pipeline::pack(canon));
    EXPECT_EQ(hash, expected.hash)
        << "canonical hash drifted for:\n"
        << t.toString();
    EXPECT_EQ(dp::crc32(record), expected.crc)
        << "packed record bytes drifted for:\n"
        << t.toString();
  }
}

// ------------------------------------------------- massive pipeline

/// Tiny trained world shared by the massive-pipeline tests (built once
/// per process; training is deterministic at any thread count).
struct TinyWorld {
  dp::drc::TopologyChecker checker;
  dp::models::Tcae tcae;
  dp::nn::Tensor sourceLatents;
  dp::core::SensitivityAwarePerturber perturber;
};

const TinyWorld& tinyWorld() {
  static const TinyWorld* world = [] {
    dp::Rng rng(2019);
    const dp::DesignRules rules = dp::euv7nmM2();
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(1), rules, 24, rng);
    const auto topologies = dp::datagen::extractTopologies(clips);
    dp::models::TcaeConfig cfg;
    // 150 steps + perturbation scale 2.0: enough decoder structure and
    // latent spread that 2048 samples yield a few hundred unique
    // patterns (60 steps collapses to ~2, which exercises nothing).
    cfg.trainSteps = 150;
    auto* w = new TinyWorld{
        dp::drc::TopologyChecker(
            dp::drc::TopologyRuleConfig::fromRules(rules)),
        dp::models::Tcae(cfg, rng), dp::nn::Tensor(),
        dp::core::SensitivityAwarePerturber(
            std::vector<double>(static_cast<std::size_t>(cfg.latentDim),
                                1.0),
            2.0)};
    w->tcae.train(topologies, rng);
    w->sourceLatents =
        dp::core::encodeSourceLatents(w->tcae, topologies, 16);
    return w;
  }();
  return *world;
}

MassiveConfig smallConfig(const std::string& dir) {
  MassiveConfig c;
  c.dir = dir;
  c.count = 2048;
  c.batchSize = 64;
  c.checkpointEvery = 512;    // 4 checkpoint commits per run
  c.patternsPerSegment = 40;  // forces mid-interval segment seals
  c.seed = 77;
  return c;
}

dp::pipeline::MassiveResult runMassive(const MassiveConfig& config,
                                       dp::serve::Metrics* metrics =
                                           nullptr) {
  const TinyWorld& w = tinyWorld();
  return dp::pipeline::runMassive(w.tcae, w.sourceLatents, w.perturber,
                                  w.checker, config, metrics);
}

std::map<std::string, std::string> dirBytes(const std::string& dir) {
  std::map<std::string, std::string> out;  // sorted by file name
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    out[entry.path().filename().string()] = ss.str();
  }
  return out;
}

::testing::AssertionResult storesIdentical(
    const std::map<std::string, std::string>& a,
    const std::map<std::string, std::string>& b) {
  for (const auto& [name, bytes] : a) {
    const auto it = b.find(name);
    if (it == b.end())
      return ::testing::AssertionFailure() << name << " missing";
    if (it->second != bytes)
      return ::testing::AssertionFailure() << name << " differs ("
                                           << bytes.size() << " vs "
                                           << it->second.size()
                                           << " bytes)";
  }
  for (const auto& [name, bytes] : b)
    if (a.find(name) == a.end())
      return ::testing::AssertionFailure() << name << " unexpected";
  return ::testing::AssertionSuccess();
}

class MassivePipeline : public ::testing::Test {
 protected:
  void SetUp() override { dp::faults::disarmAll(); }
  void TearDown() override { dp::faults::disarmAll(); }
};

TEST_F(MassivePipeline, CompletesAndIsDeterministicAcrossThreadCounts) {
  std::map<std::string, std::string> reference;
  dp::pipeline::MassiveResult first;
  for (const int threads : {1, 8}) {
    dp::test::ScopedDpThreads guard(threads);
    ScopedTempDir dir("dp_pipeline_threads_" + std::to_string(threads));
    const auto result = runMassive(smallConfig(dir.path()));
    EXPECT_EQ(result.generated, 2048);
    EXPECT_FALSE(result.resumed);
    EXPECT_GT(result.unique, 0u);
    EXPECT_GT(result.legal, 0);
    if (reference.empty()) {
      reference = dirBytes(dir.path());
      first = result;
    } else {
      EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), reference))
          << "store depends on DP_THREADS=" << threads;
      EXPECT_EQ(result.legal, first.legal);
      EXPECT_EQ(result.unique, first.unique);
      EXPECT_DOUBLE_EQ(result.diversity, first.diversity);
    }
  }
}

// The headline chaos property: for every pipeline.checkpoint.* stage
// boundary and every io.atomic.* writer site, repeatedly crash the run
// via injected faults, then finish it — the final store must be
// byte-identical to an uninterrupted run's, at 1 and 8 threads.
TEST_F(MassivePipeline, KillAtEveryStageBoundaryResumesToIdenticalStore) {
  const std::vector<std::string> sites = {
      "pipeline.checkpoint.plan",   "pipeline.checkpoint.decode",
      "pipeline.checkpoint.assess", "pipeline.checkpoint.dedup",
      "pipeline.checkpoint.seal",   "pipeline.checkpoint.commit",
      "io.atomic.write",            "io.atomic.fsync",
      "io.atomic.rename"};
  for (const int threads : {1, 8}) {
    dp::test::ScopedDpThreads guard(threads);
    ScopedTempDir ref("dp_pipeline_chaos_ref");
    const auto refResult = runMassive(smallConfig(ref.path()));
    const auto refBytes = dirBytes(ref.path());
    ASSERT_GT(refResult.unique, 0u);

    for (const std::string& site : sites) {
      SCOPED_TRACE("site=" + site +
                   " threads=" + std::to_string(threads));
      ScopedTempDir dir("dp_pipeline_chaos");
      const MassiveConfig config = smallConfig(dir.path());
      // First window always fires at the site's first call, so every
      // site provably crashes at least once (low-frequency sites like
      // seal/commit would otherwise survive a probabilistic window and
      // complete before ever firing). Later windows re-arm with fresh
      // seeds so each resume crashes somewhere new until one passes.
      dp::faults::arm(site, 13, 1.0);
      int crashes = 0;
      bool complete = false;
      for (int attempt = 0; attempt < 12 && !complete; ++attempt) {
        try {
          (void)runMassive(config);
          complete = true;
        } catch (const std::exception&) {
          ++crashes;  // crash window: resume on the next attempt
          dp::faults::arm(site, 14 + attempt, 0.35);
        }
      }
      dp::faults::disarmAll();
      const auto result = runMassive(config);
      EXPECT_GT(crashes, 0) << "fault never fired; test exercised "
                               "nothing";
      EXPECT_EQ(result.generated, refResult.generated);
      EXPECT_EQ(result.legal, refResult.legal);
      EXPECT_EQ(result.unique, refResult.unique);
      EXPECT_DOUBLE_EQ(result.diversity, refResult.diversity);
      EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), refBytes));
    }
  }
}

TEST_F(MassivePipeline, ResumeLoadFaultThenCleanRetry) {
  ScopedTempDir ref("dp_pipeline_rfault_ref");
  (void)runMassive(smallConfig(ref.path()));
  const auto refBytes = dirBytes(ref.path());

  ScopedTempDir dir("dp_pipeline_rfault");
  const MassiveConfig config = smallConfig(dir.path());
  // Crash somewhere past the first checkpoint commit, so a manifest
  // exists for the resume path to load.
  dp::faults::arm("pipeline.checkpoint.decode", 5, 0.08);
  bool committed = false;
  for (int attempt = 0; attempt < 40 && !committed; ++attempt) {
    try {
      (void)runMassive(config);
    } catch (const dp::FaultInjected&) {
    }
    const auto m = dp::pipeline::loadManifest(dir.path());
    committed = m && m->cursor > 0;
  }
  dp::faults::disarmAll();
  ASSERT_TRUE(committed);

  // The resume path itself fails...
  dp::faults::arm("pipeline.checkpoint.resume", 3, 1.0);
  EXPECT_THROW((void)runMassive(config), dp::FaultInjected);
  dp::faults::disarmAll();

  // ...then a clean retry resumes and converges on the reference.
  const auto result = runMassive(config);
  EXPECT_EQ(result.generated, 2048);
  EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), refBytes));
}

TEST_F(MassivePipeline, ExtendingCountResumesFromCommittedCursor) {
  ScopedTempDir ref("dp_pipeline_extend_ref");
  MassiveConfig refConfig = smallConfig(ref.path());
  (void)runMassive(refConfig);

  ScopedTempDir dir("dp_pipeline_extend");
  MassiveConfig config = smallConfig(dir.path());
  config.count = 1024;
  const auto half = runMassive(config);
  EXPECT_EQ(half.generated, 1024);

  config.count = 2048;
  const auto full = runMassive(config);
  EXPECT_TRUE(full.resumed);
  EXPECT_EQ(full.resumedFrom, 1024);
  EXPECT_EQ(full.generated, 2048);
  EXPECT_TRUE(storesIdentical(dirBytes(dir.path()),
                              dirBytes(ref.path())));
}

TEST_F(MassivePipeline, RejectsMismatchedGenerationParameters) {
  ScopedTempDir dir("dp_pipeline_mismatch");
  MassiveConfig config = smallConfig(dir.path());
  config.count = 1024;
  (void)runMassive(config);

  MassiveConfig wrongSeed = config;
  wrongSeed.seed = 78;
  EXPECT_THROW((void)runMassive(wrongSeed), std::invalid_argument);

  MassiveConfig wrongBatch = config;
  wrongBatch.batchSize = 32;
  EXPECT_THROW((void)runMassive(wrongBatch), std::invalid_argument);

  MassiveConfig shrunk = config;
  shrunk.count = 512;  // behind the committed cursor
  EXPECT_THROW((void)runMassive(shrunk), std::invalid_argument);
}

TEST_F(MassivePipeline, ReportsStageThroughputOnMetricsSurface) {
  ScopedTempDir dir("dp_pipeline_metrics");
  dp::serve::Metrics metrics;
  const auto result = runMassive(smallConfig(dir.path()), &metrics);
  const auto stages = metrics.stageTotals();
  for (const char* stage : {"plan", "decode", "assess", "dedup", "seal",
                            "commit"}) {
    const auto it = stages.find(stage);
    ASSERT_NE(it, stages.end()) << stage;
    EXPECT_GT(it->second.items, 0u) << stage;
    EXPECT_EQ(it->second.items, result.stages.at(stage).items) << stage;
  }
  EXPECT_EQ(stages.at("decode").items, 2048u);
  const std::string text = metrics.renderPrometheus();
  EXPECT_NE(text.find("dp_pipeline_stage_items_total{stage=\"decode\"} "
                      "2048"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dp_pipeline_stage_seconds_total{stage=\"plan\"}"),
            std::string::npos);
}

TEST_F(MassivePipeline, LoadLibraryBridgesToMaterialization) {
  ScopedTempDir dir("dp_pipeline_library");
  const auto result = runMassive(smallConfig(dir.path()));

  const dp::core::PatternLibrary library =
      dp::pipeline::loadLibrary(dir.path());
  EXPECT_EQ(library.size(), result.unique);
  EXPECT_DOUBLE_EQ(library.diversity(), result.diversity);

  const dp::core::PatternLibrary capped =
      dp::pipeline::loadLibrary(dir.path(), 5);
  ASSERT_EQ(capped.size(), 5u);

  // Eq. 10 bridge: the first stored patterns materialize into clips.
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::lp::GeometrySolver solver(rules);
  const dp::drc::GeometryChecker geomChecker(rules);
  dp::Rng rng(11);
  const dp::core::MaterializeResult mat =
      dp::core::materialize(capped, solver, geomChecker, rng);
  EXPECT_EQ(mat.attempted, 5);
  EXPECT_GT(mat.solved, 0);
}

}  // namespace
