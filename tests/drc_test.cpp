#include <gtest/gtest.h>

#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "drc/violation.hpp"
#include "testutil.hpp"

namespace dp::drc {
namespace {

using dp::test::topo;

// ------------------------------------------------------------ DrcReport

TEST(DrcReport, StartsClean) {
  DrcReport r;
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.toString(), "clean");
}

TEST(DrcReport, AddDeduplicates) {
  DrcReport r;
  r.add(Violation::kBowTie);
  r.add(Violation::kBowTie);
  EXPECT_EQ(r.violations.size(), 1u);
  EXPECT_TRUE(r.has(Violation::kBowTie));
  EXPECT_FALSE(r.has(Violation::kMinT2T));
}

TEST(DrcReport, ToStringJoinsNames) {
  DrcReport r;
  r.add(Violation::kBowTie);
  r.add(Violation::kMinT2T);
  EXPECT_EQ(r.toString(), "bow-tie, min-t2t");
}

TEST(Violation, AllKindsHaveNames) {
  for (Violation v :
       {Violation::kEmptyPattern, Violation::kAdjacentTracks,
        Violation::kBowTie, Violation::kTwoDimensionalShape,
        Violation::kComplexityX, Violation::kComplexityY,
        Violation::kOffTrack, Violation::kMinLength, Violation::kMinT2T,
        Violation::kOverlap, Violation::kOutsideWindow})
    EXPECT_NE(toString(v), "unknown");
}

// ----------------------------------------------------- TopologyChecker

TEST(TopologyChecker, AcceptsLegalAlternatingPattern) {
  const TopologyChecker checker;
  EXPECT_TRUE(checker.isLegal(topo({"#.#",  //
                                    "...",  //
                                    ".#."})));
}

TEST(TopologyChecker, RejectsEmpty) {
  const TopologyChecker checker;
  const auto report = checker.check(topo({"...", "..."}));
  EXPECT_TRUE(report.has(Violation::kEmptyPattern));
}

TEST(TopologyChecker, EmptyAllowedWhenDisabled) {
  TopologyRuleConfig cfg;
  cfg.forbidEmpty = false;
  const TopologyChecker checker(cfg);
  EXPECT_TRUE(checker.check(topo({"..."})).clean());
}

TEST(TopologyChecker, RejectsAdjacentTracks) {
  const TopologyChecker checker;
  const auto report = checker.check(topo({"#..",  //
                                          "..#"}));
  EXPECT_TRUE(report.has(Violation::kAdjacentTracks));
}

TEST(TopologyChecker, RejectsBowTie) {
  TopologyRuleConfig cfg;
  cfg.forbidAdjacentTracks = false;
  cfg.forbid2dShapes = false;
  const TopologyChecker checker(cfg);
  const auto report = checker.check(topo({".#",  //
                                          "#."}));
  EXPECT_TRUE(report.has(Violation::kBowTie));
  EXPECT_FALSE(report.has(Violation::kAdjacentTracks));
}

TEST(TopologyChecker, Rejects2dShapes) {
  TopologyRuleConfig cfg;
  cfg.forbidAdjacentTracks = false;
  cfg.forbidBowTie = false;
  const TopologyChecker checker(cfg);
  const auto report = checker.check(topo({"#.",  //
                                          "##"}));
  EXPECT_TRUE(report.has(Violation::kTwoDimensionalShape));
}

TEST(TopologyChecker, ComplexityCapsApply) {
  TopologyRuleConfig cfg;
  cfg.maxCx = 3;
  cfg.maxCy = 3;
  const TopologyChecker checker(cfg);
  // 5 columns after canonicalization (wire-gap-wire-gap-wire), 1 row.
  const auto report = checker.check(topo({"#.#.#"}));
  EXPECT_TRUE(report.has(Violation::kComplexityX));
  EXPECT_FALSE(report.has(Violation::kComplexityY));
}

TEST(TopologyChecker, CanonicalizesBeforeChecking) {
  TopologyRuleConfig cfg;
  cfg.maxCx = 2;
  cfg.maxCy = 2;
  const TopologyChecker checker(cfg);
  // Raw 4x4 but canonically 2x2.
  EXPECT_TRUE(checker.isLegal(topo({"##..",  //
                                    "##..",  //
                                    "....",  //
                                    "...."})));
}

TEST(TopologyChecker, PaperFig5AdjacentTrackExample) {
  // Shapes on neighbouring tracks, even without x overlap, are illegal
  // on the uni-directional EUV layers (Fig. 5).
  const TopologyChecker checker;
  EXPECT_FALSE(checker.isLegal(topo({"##...",  //
                                     "...##"})));
}

TEST(TopologyChecker, FromRulesCopiesCaps) {
  dp::DesignRules r = dp::euv7nmM2();
  r.maxCx = 7;
  const auto cfg = TopologyRuleConfig::fromRules(r);
  EXPECT_EQ(cfg.maxCx, 7);
  EXPECT_EQ(cfg.maxCy, 12);
}

// ----------------------------------------------------- GeometryChecker

dp::Clip trackClip() {
  // Legal: two wires on track 1 (y 48..64) and one on track 3 (112..128).
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 64});
  c.addShape(dp::Rect{100, 48, 192, 64});
  c.addShape(dp::Rect{40, 112, 140, 128});
  return c;
}

TEST(GeometryChecker, AcceptsLegalClip) {
  const GeometryChecker checker(dp::euv7nmM2());
  EXPECT_TRUE(checker.isClean(trackClip()));
}

TEST(GeometryChecker, FlagsEmptyClip) {
  const GeometryChecker checker(dp::euv7nmM2());
  const auto report = checker.check(dp::Clip(dp::Rect{0, 0, 192, 192}));
  EXPECT_TRUE(report.has(Violation::kEmptyPattern));
}

TEST(GeometryChecker, FlagsOffTrackShapes) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 50, 80, 66});  // not on the half-pitch lattice
  EXPECT_TRUE(checker.check(c).has(Violation::kOffTrack));
}

TEST(GeometryChecker, FlagsWrongWireWidth) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 80});  // two rows tall
  EXPECT_TRUE(checker.check(c).has(Violation::kOffTrack));
}

TEST(GeometryChecker, FlagsAdjacentOccupiedRows) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 64});
  c.addShape(dp::Rect{100, 64, 192, 80});  // the row right above
  EXPECT_TRUE(checker.check(c).has(Violation::kAdjacentTracks));
}

TEST(GeometryChecker, FlagsShortInteriorWire) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{50, 48, 60, 64});  // 10nm < 16nm min length
  EXPECT_TRUE(checker.check(c).has(Violation::kMinLength));
}

TEST(GeometryChecker, BorderWiresExemptFromLengthRule) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 10, 64});     // cut by left border
  c.addShape(dp::Rect{184, 48, 192, 64});  // cut by right border
  EXPECT_FALSE(checker.check(c).has(Violation::kMinLength));
}

TEST(GeometryChecker, FlagsTightTipToTip) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 64});
  c.addShape(dp::Rect{86, 48, 192, 64});  // 6nm < 12nm T2T
  EXPECT_TRUE(checker.check(c).has(Violation::kMinT2T));
}

TEST(GeometryChecker, FlagsOverlapWithinTrack) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 64});
  c.addShape(dp::Rect{70, 48, 150, 64});
  // normalize() merges overlapping same-track shapes into one wire, so
  // the merged clip is clean — overlap is only reportable for distinct
  // bands; the merged result must then be clean.
  EXPECT_TRUE(checker.isClean(c));
}

TEST(GeometryChecker, AbuttingWiresMergeNotT2T) {
  const GeometryChecker checker(dp::euv7nmM2());
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 48, 80, 64});
  c.addShape(dp::Rect{80, 48, 192, 64});
  EXPECT_FALSE(checker.check(c).has(Violation::kMinT2T));
}

}  // namespace
}  // namespace dp::drc
