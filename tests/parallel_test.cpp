// Determinism and regression tests for the thread-pool execution
// substrate. The contract under test: every parallelized computation in
// the project is bit-identical at any DP_THREADS setting — chunk
// boundaries depend only on (n, grain), per-element accumulation orders
// are fixed, and per-task Rng streams are derived from the task index,
// never from scheduling.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "core/flows.hpp"
#include "core/pipeline.hpp"
#include "core/sensitivity.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "models/topology_codec.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "squish/hash.hpp"
#include "tensor/gemm.hpp"
#include "testutil.hpp"

namespace {

using dp::ThreadPool;
using dp::nn::Tensor;
using dp::test::ScopedDpThreads;
using dp::test::tensorsBitEqual;

// ------------------------------------------------------- ThreadPool unit

TEST(ThreadPool, StartupAndShutdown) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::atomic<long> sum{0};
    pool.parallelFor(100, 3, [&](long b, long e) { sum += e - b; });
    EXPECT_EQ(sum.load(), 100);
  }
  // Destroying an idle pool must not hang (checked implicitly by scope
  // exit); a zero-thread request clamps to one.
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.threads(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const long n = 1000;
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v = 0;
    pool.parallelFor(n, 7, [&](long b, long e) {
      for (long i = b; i < e; ++i) ++visits[static_cast<std::size_t>(i)];
    });
    for (long i = 0; i < n; ++i)
      ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
  }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  auto chunksAt = [](int threads) {
    ThreadPool pool(threads);
    dp::Mutex m;
    std::set<std::pair<long, long>> chunks;
    pool.parallelFor(103, 10, [&](long b, long e) {
      const dp::LockGuard lock(m);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  const auto serial = chunksAt(1);
  EXPECT_EQ(serial.size(), 11u);  // ceil(103 / 10)
  EXPECT_EQ(serial, chunksAt(2));
  EXPECT_EQ(serial, chunksAt(4));
}

TEST(ThreadPool, PropagatesExceptionsAndSurvivesThem) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(64, 1,
                       [&](long b, long) {
                         if (b == 17)
                           throw std::runtime_error("chunk failure");
                       }),
      std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::atomic<long> sum{0};
  pool.parallelFor(50, 5, [&](long b, long e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 50);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<long> inner{0};
  pool.parallelFor(8, 1, [&](long, long) {
    // A nested parallelFor from inside a worker must run inline rather
    // than wait on pool capacity it may itself be occupying.
    pool.parallelFor(10, 1, [&](long b, long e) { inner += e - b; });
  });
  EXPECT_EQ(inner.load(), 80);
}

TEST(ThreadPool, DefaultThreadsReadsEnvironment) {
  const ScopedDpThreads guard(3);
  EXPECT_EQ(ThreadPool::defaultThreads(), 3);
  EXPECT_EQ(ThreadPool::global().threads(), 3);
}

TEST(SplitMix, TaskSeedsAreDistinctAndStable) {
  // Stable: pure function of (seed, index).
  EXPECT_EQ(dp::taskSeed(42, 7), dp::taskSeed(42, 7));
  // Distinct across a contiguous index range (the generation use case).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i)
    seen.insert(dp::taskSeed(0x5eed, i));
  EXPECT_EQ(seen.size(), 10000u);
  // Index 0 must not collapse onto the base seed.
  EXPECT_NE(dp::taskSeed(0x5eed, 0), 0x5eedu);
}

// ------------------------------------------------- bit-exact equivalence

/// Runs `fn` under `threads` pool threads and returns its result.
template <typename Fn>
auto withThreads(int threads, Fn&& fn) {
  const ScopedDpThreads guard(threads);
  return fn();
}

TEST(BitExact, GemmMatchesSerialAtFourThreads) {
  dp::Rng rng(21);
  const int m = 67, n = 45, k = 123;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  auto run = [&] {
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f);
    dp::nn::gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                 0.25f, c.data(), n);
    return c;
  };
  const auto serial = withThreads(1, run);
  EXPECT_EQ(serial, withThreads(2, run));
  EXPECT_EQ(serial, withThreads(4, run));
}

TEST(BitExact, Conv2dForwardBackwardMatchesSerial) {
  auto run = [&](int threads) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(31);
    dp::nn::Conv2d conv(3, 5, 3, 2, 1, rng);
    const Tensor x = Tensor::randn({6, 3, 12, 12}, rng);
    const Tensor y = conv.forward(x, /*training=*/true);
    const Tensor dy = Tensor::randn(y.shape(), rng);
    const Tensor dx = conv.backward(dy);
    std::vector<Tensor> grads;
    for (dp::nn::Param* p : conv.params()) grads.push_back(p->grad);
    return std::make_tuple(y, dx, grads);
  };
  const auto [y1, dx1, g1] = run(1);
  const auto [y4, dx4, g4] = run(4);
  EXPECT_TRUE(tensorsBitEqual(y1, y4));
  EXPECT_TRUE(tensorsBitEqual(dx1, dx4));
  ASSERT_EQ(g1.size(), g4.size());
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_TRUE(tensorsBitEqual(g1[i], g4[i])) << "param " << i;
}

TEST(BitExact, ConvTranspose2dForwardBackwardMatchesSerial) {
  auto run = [&](int threads) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(32);
    dp::nn::ConvTranspose2d deconv(5, 3, 4, 2, 1, rng);
    const Tensor x = Tensor::randn({6, 5, 6, 6}, rng);
    const Tensor y = deconv.forward(x, /*training=*/true);
    const Tensor dy = Tensor::randn(y.shape(), rng);
    const Tensor dx = deconv.backward(dy);
    std::vector<Tensor> grads;
    for (dp::nn::Param* p : deconv.params()) grads.push_back(p->grad);
    return std::make_tuple(y, dx, grads);
  };
  const auto [y1, dx1, g1] = run(1);
  const auto [y4, dx4, g4] = run(4);
  EXPECT_TRUE(tensorsBitEqual(y1, y4));
  EXPECT_TRUE(tensorsBitEqual(dx1, dx4));
  ASSERT_EQ(g1.size(), g4.size());
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_TRUE(tensorsBitEqual(g1[i], g4[i])) << "param " << i;
}

TEST(BitExact, InferMatchesForwardEval) {
  // The stateless infer() path must reproduce forward(training=false)
  // exactly — it is what makes shared models thread-safe.
  dp::Rng rng(33);
  dp::models::TcaeConfig cfg;
  cfg.inputSize = 12;
  cfg.latentDim = 6;
  cfg.conv1Channels = 3;
  cfg.conv2Channels = 4;
  cfg.hidden = 16;
  dp::models::Tcae tcae(cfg, rng);
  const Tensor x = Tensor::randn({4, 1, 12, 12}, rng);
  const Tensor latent = tcae.encode(x);
  EXPECT_EQ(latent.shape(), (std::vector<int>{4, 6}));
  const Tensor recon = tcae.decode(latent);
  EXPECT_EQ(recon.shape(), x.shape());
  // Same call twice on a shared const model: identical output.
  EXPECT_TRUE(tensorsBitEqual(recon, tcae.decode(latent)));
}

std::vector<dp::squish::Topology> randomTopologies(int count, int rows,
                                                   int cols, dp::Rng& rng) {
  std::vector<dp::squish::Topology> out;
  for (int i = 0; i < count; ++i) {
    dp::squish::Topology t(rows, cols);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        t.set(r, c, rng.bernoulli(0.4) ? 1 : 0);
    out.push_back(std::move(t));
  }
  return out;
}

TEST(BitExact, TcaeTrainingMatchesSerial) {
  // Short end-to-end training run: every gemm, conv forward/backward
  // and gradient reduction in the loop must be deterministic for the
  // final weights to match bit-for-bit.
  auto train = [&](int threads) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(77);
    dp::models::TcaeConfig cfg;
    cfg.inputSize = 8;
    cfg.latentDim = 4;
    cfg.conv1Channels = 2;
    cfg.conv2Channels = 3;
    cfg.hidden = 8;
    cfg.trainSteps = 9;  // 3 passes over 12 samples at batch 4
    cfg.batchSize = 4;
    auto model = std::make_unique<dp::models::Tcae>(cfg, rng);
    dp::Rng trainRng(78);
    (void)model->train(randomTopologies(12, 6, 6, rng), trainRng);
    return model;
  };
  auto m1 = train(1);
  auto m2 = train(2);
  auto m4 = train(4);
  const auto p1 = m1->params();
  const auto p2 = m2->params();
  const auto p4 = m4->params();
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(tensorsBitEqual(p1[i]->value, p2[i]->value))
        << "param " << i << " at 2 threads";
    EXPECT_TRUE(tensorsBitEqual(p1[i]->value, p4[i]->value))
        << "param " << i << " at 4 threads";
  }
}

/// Sorted canonical-hash multiset of a generation result's unique set.
std::vector<std::uint64_t> hashMultiset(const dp::core::GenerationResult& r) {
  std::vector<std::uint64_t> hashes;
  for (const auto& t : r.unique.patterns())
    hashes.push_back(dp::squish::hashCanonical(t));
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

TEST(BitExact, MassiveGenerationIdenticalAcrossThreadCounts) {
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto generate = [&](int threads) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(5);
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(1), rules, 24, rng);
    const auto topos = dp::datagen::extractTopologies(clips);
    dp::models::Tcae tcae(dp::models::TcaeConfig{}, rng);
    const auto perturber =
        dp::core::SensitivityAwarePerturber::uniformNoise(
            tcae.config().latentDim, 0.5);
    dp::core::FlowConfig flow;
    flow.count = 96;
    flow.batchSize = 32;
    flow.sourcePoolSize = 16;
    flow.collectGoodVectors = true;
    dp::Rng genRng(6);
    return dp::core::tcaeRandom(tcae, topos, perturber, checker, flow,
                                genRng);
  };
  const auto r1 = generate(1);
  const auto r2 = generate(2);
  const auto r4 = generate(4);
  EXPECT_EQ(r1.generated, 96);
  EXPECT_EQ(r1.legal, r4.legal);
  EXPECT_EQ(r1.goodVectors, r2.goodVectors);
  EXPECT_EQ(r1.goodVectors, r4.goodVectors);
  EXPECT_EQ(hashMultiset(r1), hashMultiset(r2));
  EXPECT_EQ(hashMultiset(r1), hashMultiset(r4));
}

TEST(BitExact, SensitivityIdenticalAcrossThreadCounts) {
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto estimate = [&](int threads) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(9);
    dp::models::TcaeConfig cfg;
    cfg.inputSize = 8;
    cfg.latentDim = 6;
    cfg.conv1Channels = 2;
    cfg.conv2Channels = 3;
    cfg.hidden = 8;
    dp::models::Tcae tcae(cfg, rng);
    dp::core::SensitivityConfig sens;
    sens.sweepSteps = 3;
    sens.maxTopologies = 8;
    return dp::core::estimateSensitivity(
        tcae, randomTopologies(8, 6, 6, rng), checker, sens);
  };
  const auto s1 = estimate(1);
  EXPECT_EQ(s1.size(), 6u);
  EXPECT_EQ(s1, estimate(2));
  EXPECT_EQ(s1, estimate(4));
}

TEST(BitExact, MaterializeIdenticalAcrossThreadCounts) {
  const dp::DesignRules rules = dp::euv7nmM2();
  auto materializeAt = [&](int threads,
                           dp::lp::GeometryBackend backend) {
    const ScopedDpThreads guard(threads);
    dp::Rng rng(14);
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(1), rules, 16, rng);
    dp::core::PatternLibrary library;
    for (const auto& t : dp::datagen::extractTopologies(clips))
      library.add(t);
    const dp::lp::GeometrySolver solver(rules, backend);
    const dp::drc::GeometryChecker geomChecker(rules);
    dp::Rng matRng(15);
    return dp::core::materialize(library, solver, geomChecker, matRng);
  };
  for (const auto backend :
       {dp::lp::GeometryBackend::kDifferenceConstraints,
        dp::lp::GeometryBackend::kSimplexRandomVertex}) {
    const auto r1 = materializeAt(1, backend);
    const auto r4 = materializeAt(4, backend);
    EXPECT_GT(r1.attempted, 0);
    EXPECT_EQ(r1.attempted, r4.attempted);
    EXPECT_EQ(r1.solved, r4.solved);
    EXPECT_EQ(r1.drcClean, r4.drcClean);
    ASSERT_EQ(r1.clips.size(), r4.clips.size());
    for (std::size_t i = 0; i < r1.clips.size(); ++i) {
      const auto& a = r1.clips[i].shapes();
      const auto& b = r4.clips[i].shapes();
      ASSERT_EQ(a.size(), b.size()) << "clip " << i;
      for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s].x0, b[s].x0);
        EXPECT_EQ(a[s].y0, b[s].y0);
        EXPECT_EQ(a[s].x1, b[s].x1);
        EXPECT_EQ(a[s].y1, b[s].y1);
      }
    }
  }
}

}  // namespace
