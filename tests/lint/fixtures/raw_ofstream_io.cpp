// dp-lint fixture: raw std::ofstream artifact writes in src/io/ scope
// — the DP006 ban extends to every artifact writer, not just model
// checkpoints. One bare violation, one escaped scratch write, and the
// read-side std::ifstream which is always fine.
// dp-lint-path: src/io/fake_writer.cpp
// dp-lint-expect: DP006
#include <fstream>
#include <string>

void crashUnsafeArtifact(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << "gdsii bytes";
}

void deliberateScratchWrite(const std::string& path) {
  // Scratch diagnostics, not a published artifact.
  // dp-lint: non-atomic-write
  std::ofstream out(path);
  out << "debug dump";
}

std::string readBack(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  in >> s;
  return s;
}
