// dp-lint fixture: bare accept/recv/send inside the event loop TU.
// Two call sites carry the nonblocking justification and pass; the
// other two block the loop thread and must each raise DP007.
// dp-lint-path: src/serve/eventloop.cpp
// dp-lint-expect: DP007 DP007
#include <sys/socket.h>

int pumpOnce(int listenFd, int connFd, char* buf, int n) {
  // dp-lint: nonblocking (SOCK_NONBLOCK requested at accept)
  const int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
  // dp-lint: nonblocking (fd accepted with SOCK_NONBLOCK)
  const long got = ::recv(connFd, buf, static_cast<size_t>(n), 0);
  // A helper whose name merely contains a banned verb is fine.
  // (sendAll / recvSome style wrappers are not socket syscalls.)
  const long sent = ::send(connFd, buf, static_cast<size_t>(got), 0);
  const int peer = ::accept(listenFd, nullptr, nullptr);
  return fd + peer + static_cast<int>(sent);
}
