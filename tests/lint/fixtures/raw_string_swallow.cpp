// dp-lint-path: src/serve/banner.cpp
// dp-lint-expect: DP002
//
// Raw-string false-NEGATIVE direction: an odd number of embedded
// quotes leaves a naive stripper stuck in string state, so it swallows
// the real `std::mutex` declaration that follows and the violation
// goes unreported.
#include <mutex>

namespace dp::serve {

const char* kBanner = R"(an unmatched " lives inside this literal)";

std::mutex gBannerLock;  // real DP002 violation after the raw string

}  // namespace dp::serve
