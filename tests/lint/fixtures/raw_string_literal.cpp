// dp-lint-path: src/serve/usage_text.cpp
// dp-lint-expect: none
//
// Raw-string false-POSITIVE direction: the literal's content mentions
// banned tokens and embeds quotes. A stripper without raw-string
// handling exits string state at the first embedded `"`, leaking
// `std::mutex` / `std::rand` into the code view.
#include <string>

namespace dp::serve {

const char* usageText() {
  static const std::string kDoc = R"(serve admin notes:
  * never hand-roll locking with "std::mutex" here — dp::Mutex only
  * never seed with "std::rand" or srand(time(nullptr))
)";
  return kDoc.c_str();
}

const char* delimitedDoc() {
  // Custom delimiter, content contains a bare `)"` sequence.
  return R"doc(the sequence )" does not close this literal)doc";
}

}  // namespace dp::serve
