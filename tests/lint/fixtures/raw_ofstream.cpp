// dp-lint fixture: raw std::ofstream checkpoint writes in src/nn/ and
// src/serve/ scope — one bare violation, one escaped, and the
// read-side std::ifstream which is always fine.
// dp-lint-path: src/nn/fake_save.cpp
// dp-lint-expect: DP006
#include <fstream>
#include <string>

void crashUnsafeSave(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << "weights";
}

void deliberateScratchWrite(const std::string& path) {
  // Scratch diagnostics, not a published artifact.
  // dp-lint: non-atomic-write
  std::ofstream out(path);
  out << "debug dump";
}

std::string readBack(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s;
  in >> s;
  return s;
}
