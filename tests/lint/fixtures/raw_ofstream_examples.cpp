// dp-lint fixture: raw std::ofstream in examples/ scope — example
// binaries write user-facing artifacts (libraries, generated layouts,
// reports) and must publish them atomically like the library code
// they demonstrate.
// dp-lint-path: examples/fake_tool.cpp
// dp-lint-expect: DP006
#include <fstream>
#include <string>

void writeReport(const std::string& path) {
  std::ofstream out(path);
  out << "clips: 42\n";
}
