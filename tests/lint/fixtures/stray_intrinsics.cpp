// dp-lint fixture: AVX2 surface leaking out of a *_avx2.cpp TU — the
// include, the vector type, and both intrinsic calls each fire.
// dp-lint-path: src/fake/stray_intrinsics.cpp
// dp-lint-expect: DP005 DP005 DP005 DP005
#include <immintrin.h>

float horizontalAdd(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  float lanes[8];
  _mm256_storeu_ps(lanes, v);
  float s = 0.0F;
  for (float lane : lanes) s += lane;
  return s;
}
