// dp-lint fixture: every banned randomness source in src/ scope.
// dp-lint-path: src/fake/banned_rng.cpp
// dp-lint-expect: DP001 DP001 DP001 DP001 DP001
#include <cstdlib>
#include <ctime>
#include <random>

int unseededDraw() { return std::rand(); }

void wallClockSeed() {
  std::srand(42);
  srand(static_cast<unsigned>(time(nullptr)));
}

unsigned entropySeed() {
  std::random_device rd;  // nondeterministic: banned in src/
  return rd();
}

// Mentioning std::rand or time( in a comment must NOT fire.
