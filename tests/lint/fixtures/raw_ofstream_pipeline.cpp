// dp-lint fixture: DP006 scope covers src/pipeline/ — segment and
// manifest files feed the resume protocol, so a torn write corrupts
// the store a crashed run needs to come back from.
// dp-lint-path: src/pipeline/fake_segment.cpp
// dp-lint-expect: DP006
#include <fstream>
#include <string>

void crashUnsafeSegmentWrite(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << "records";
}

void deliberateScratchWrite(const std::string& path) {
  // Scratch diagnostics, not part of the committed store.
  // dp-lint: non-atomic-write
  std::ofstream out(path);
  out << "debug dump";
}
