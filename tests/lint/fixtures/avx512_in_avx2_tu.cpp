// dp-lint fixture: AVX-512-specific surface inside an *_avx2.cpp TU —
// the TU is compiled with -mavx2 only, so the mask type, the 512-bit
// vector type, and the _mm512_ calls each fire. The plain AVX2
// intrinsics around them stay clean.
// dp-lint-path: src/tensor/fake_kernel_avx2.cpp
// dp-lint-expect: DP005 DP005 DP005 DP005
#include <immintrin.h>

float horizontalAdd(const float* p) {
  __m256 ok = _mm256_loadu_ps(p);
  _mm256_storeu_ps(const_cast<float*>(p), ok);
  __m512 v = _mm512_loadu_ps(p);
  __mmask16 k = 0xFFFF;
  return _mm512_mask_reduce_add_ps(k, v);
}
