// dp-lint fixture: idiomatic repo code — dp::Rng for randomness,
// dp::Mutex wrappers for locking, ordered containers for enumeration.
// Must produce no findings.
// dp-lint-path: src/fake/clean.cpp
// dp-lint-expect: none
#include <cstdint>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "common/sync.hpp"

struct Registry {
  mutable dp::Mutex mutex;
  std::map<std::uint64_t, std::string> byHash DP_GUARDED_BY(mutex);

  std::size_t size() const {
    dp::LockGuard lock(mutex);
    return byHash.size();
  }
};

int draw(std::uint64_t seed) {
  dp::Rng rng(seed);
  return rng.uniformInt(0, 255);
}
