// dp-lint fixture: unordered-container iteration in src/ scope. Two
// violations (range-for and explicit begin()); the justified loop and
// the point lookup are clean.
// dp-lint-path: src/fake/unordered_iteration.cpp
// dp-lint-expect: DP004 DP004
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Index {
  std::unordered_map<std::uint64_t, std::string> byHash_;
  std::unordered_set<std::uint64_t> seen_;

  int enumerate() const {
    int n = 0;
    for (const auto& [hash, name] : byHash_) n += name.empty() ? 0 : 1;
    return n;
  }

  bool anySeen() const { return seen_.begin() != seen_.end(); }

  // Order-insensitive reduction: justified, must not fire.
  std::size_t total() const {
    std::size_t sum = 0;
    // dp-lint: ordered
    for (const auto& [hash, name] : byHash_) sum += name.size();
    return sum;
  }

  // Point lookup, not iteration: clean.
  bool contains(std::uint64_t h) const { return byHash_.count(h) > 0; }
};
