// dp-lint fixture: the same intrinsics are fine inside a *_avx2.cpp
// translation unit (the dispatch-gated home for ISA-specific code).
// dp-lint-path: src/tensor/fake_kernel_avx2.cpp
// dp-lint-expect: none
#include <immintrin.h>

float horizontalAdd(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  float lanes[8];
  _mm256_storeu_ps(lanes, v);
  float s = 0.0F;
  for (float lane : lanes) s += lane;
  return s;
}
