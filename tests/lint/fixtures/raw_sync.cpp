// dp-lint fixture: raw standard sync primitives outside sync.hpp.
// Five findings: the lock_guard line carries two (the guard template
// and its std::mutex argument).
// dp-lint-path: src/fake/raw_sync.cpp
// dp-lint-expect: DP002 DP002 DP002 DP002 DP002
#include <condition_variable>
#include <mutex>

std::mutex gMutex;
std::condition_variable gCv;

void locked() {
  std::lock_guard<std::mutex> lock(gMutex);
}

void waiting() {
  std::unique_lock lock(gMutex);
  gCv.wait(lock);
}
