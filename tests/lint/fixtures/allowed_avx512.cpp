// dp-lint fixture: AVX-512 surface — masks, 512-bit vectors, and the
// narrower SSE/AVX intrinsics it composes with — is all in bounds
// inside a *_avx512.cpp translation unit (the widest dispatch tier).
// dp-lint-path: src/tensor/fake_kernel_avx512.cpp
// dp-lint-expect: none
#include <immintrin.h>

float horizontalAdd(const float* p, const float* q) {
  __m512 v = _mm512_loadu_ps(p);
  __mmask16 k = _mm512_cmp_ps_mask(v, _mm512_setzero_ps(), _CMP_GT_OQ);
  v = _mm512_maskz_loadu_ps(k, p);
  float s = _mm512_reduce_add_ps(v);
  __m128 tail = _mm_loadu_ps(q);
  float lanes[4];
  _mm_storeu_ps(lanes, tail);
  for (float lane : lanes) s += lane;
  return s;
}
