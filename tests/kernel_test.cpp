/// \file kernel_test.cpp
/// Kernel-layer conformance suite (ctest label: kernel). Pins every
/// runtime dispatch target against a naive reference GEMM across
/// shapes, transpose combinations and alpha/beta edge cases, checks
/// the im2col-free direct convolution against the im2col+GEMM route,
/// and locks the determinism contract: per-target results are
/// bit-identical at every DP_THREADS setting.
///
/// Exactness policy: the scalar target must match the reference
/// bit-for-bit (both accumulate each element in ascending-p order with
/// plain mul+add; the baseline ISA cannot contract them into FMA). The
/// AVX2 target contracts with FMA and is compared with a tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cpu.hpp"
#include "tensor/conv_direct.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/im2col.hpp"
#include "testutil.hpp"

namespace dp::nn {
namespace {

/// Deterministic fill in [-1, 1) — plain LCG so the suite needs no
/// seed plumbing and every target sees identical operands.
void lcgFill(std::vector<float>& v, std::uint32_t seed) {
  std::uint32_t s = seed * 2654435761u + 1u;
  for (float& x : v) {
    s = s * 1664525u + 1013904223u;
    x = static_cast<float>(static_cast<std::int32_t>(s >> 8) & 0xffff) /
            32768.0f -
        1.0f;
  }
}

/// Naive reference: same operation sequence per output element as the
/// packed kernels (ascending-p mul+add chain, then beta/alpha applied
/// exactly like the driver: C = beta*C0 + alpha*acc, with beta == 0
/// storing zero regardless of C0).
void refGemm(bool transA, bool transB, int m, int n, int k, float alpha,
             const float* a, int lda, const float* b, int ldb, float beta,
             const float* c0, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = transA ? a[static_cast<long>(p) * lda + i]
                                : a[static_cast<long>(i) * lda + p];
        const float bv = transB ? b[static_cast<long>(j) * ldb + p]
                                : b[static_cast<long>(p) * ldb + j];
        acc += av * bv;
      }
      const long idx = static_cast<long>(i) * ldc + j;
      const float base = beta == 0.0f ? 0.0f : beta * c0[idx];
      c[idx] = base + alpha * acc;
    }
  }
}

/// RAII guard: restores the dispatch target active at construction.
class ScopedKernelTarget {
 public:
  explicit ScopedKernelTarget(KernelTarget t) : saved_(gemmKernelTarget()) {
    setGemmKernelTarget(t);
  }
  ~ScopedKernelTarget() { setGemmKernelTarget(saved_); }
  ScopedKernelTarget(const ScopedKernelTarget&) = delete;
  ScopedKernelTarget& operator=(const ScopedKernelTarget&) = delete;

 private:
  KernelTarget saved_;
};

/// Compares a target's result against the reference under the
/// per-target exactness policy.
void expectMatchesReference(KernelTarget t, const std::vector<float>& got,
                            const std::vector<float>& ref,
                            const char* what) {
  ASSERT_EQ(got.size(), ref.size());
  if (t == KernelTarget::kScalar) {
    if (std::memcmp(got.data(), ref.data(),
                    got.size() * sizeof(float)) == 0)
      return;
    for (std::size_t i = 0; i < got.size(); ++i) {
      std::uint32_t bg, br;
      std::memcpy(&bg, &got[i], sizeof(bg));
      std::memcpy(&br, &ref[i], sizeof(br));
      ASSERT_EQ(bg, br) << what << ": scalar target differs from the "
                        << "reference at flat index " << i << " (" << got[i]
                        << " vs " << ref[i] << ")";
    }
    return;
  }
  // FMA-contracted target: last-ulps drift only. Operands are in
  // [-1, 1) and k <= a few hundred, so 1e-3 absolute is generous
  // while still catching any indexing or accumulation-order bug.
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], ref[i], 1e-3f)
        << what << ": target " << kernelTargetName(t)
        << " out of tolerance at flat index " << i;
}

TEST(KernelDispatchTest, ScalarAlwaysSupportedAndSelectable) {
  const auto targets = supportedKernelTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets.front(), KernelTarget::kScalar);
  ScopedKernelTarget guard(KernelTarget::kScalar);
  EXPECT_EQ(gemmKernelTarget(), KernelTarget::kScalar);
}

TEST(KernelDispatchTest, UnsupportedTargetThrows) {
  const auto targets = supportedKernelTargets();
  const bool hasAvx2 =
      std::find(targets.begin(), targets.end(), KernelTarget::kAvx2) !=
      targets.end();
  if (hasAvx2) GTEST_SKIP() << "AVX2 available; nothing is unsupported";
  EXPECT_THROW(setGemmKernelTarget(KernelTarget::kAvx2),
               std::invalid_argument);
}

// DP_KERNEL=avx512 on a host or build without AVX-512 must warn on
// stderr, fall back to the best usable tier, and produce results
// identical to selecting that tier directly: the override machinery
// may change speed, never output. `avx512Compiled=false` models the
// non-AVX-512 environment deterministically on any hardware;
// chooseKernelTarget is the pure core behind the startup selection.
TEST(KernelDispatchTest, Avx512OverrideFallsBackWithWarning) {
  ASSERT_EQ(::setenv("DP_KERNEL", "avx512", 1), 0);
  ::testing::internal::CaptureStderr();
  const bool avx2Usable =
      detail::avx2KernelCompiled() && cpuSupports(KernelTarget::kAvx2);
  const KernelTarget picked =
      chooseKernelTarget(detail::avx2KernelCompiled(),
                         /*avx512Compiled=*/false);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  ::unsetenv("DP_KERNEL");

  EXPECT_NE(picked, KernelTarget::kAvx512);
  const KernelTarget expected =
      avx2Usable ? KernelTarget::kAvx2 : KernelTarget::kScalar;
  EXPECT_EQ(picked, expected);
  EXPECT_NE(warning.find("DP_KERNEL=avx512"), std::string::npos)
      << "fallback must be announced on stderr, got: \"" << warning
      << '"';
  EXPECT_NE(warning.find("no AVX-512 kernel"), std::string::npos)
      << "warning must say why, got: \"" << warning << '"';

  // Same results: a GEMM under the fallback matches the same GEMM
  // with that tier chosen explicitly, bit for bit (same kernel runs).
  const int m = 33, n = 29, k = 47;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  lcgFill(a, 7u);
  lcgFill(b, 11u);
  std::vector<float> viaOverride(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> direct(viaOverride);
  {
    ScopedKernelTarget guard(picked);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         viaOverride.data(), n);
  }
  {
    ScopedKernelTarget guard(expected);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         direct.data(), n);
  }
  EXPECT_EQ(std::memcmp(viaOverride.data(), direct.data(),
                        viaOverride.size() * sizeof(float)),
            0);
}

TEST(KernelGemmTest, AllTargetsShapesAndTransposes) {
  const int sizes[] = {1, 3, 17, 64, 129};
  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    for (const int m : sizes) {
      for (const int n : sizes) {
        for (const int k : sizes) {
          for (int combo = 0; combo < 4; ++combo) {
            const bool ta = combo & 1;
            const bool tb = combo & 2;
            const int lda = ta ? m : k;
            const int ldb = tb ? k : n;
            std::vector<float> a(static_cast<std::size_t>(m) * k);
            std::vector<float> b(static_cast<std::size_t>(k) * n);
            std::vector<float> c(static_cast<std::size_t>(m) * n, 777.0f);
            std::vector<float> ref(c.size());
            lcgFill(a, static_cast<std::uint32_t>(m * 131 + k));
            lcgFill(b, static_cast<std::uint32_t>(n * 17 + k + 7));
            gemm(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
                 c.data(), n);
            refGemm(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb,
                    0.0f, nullptr, ref.data(), n);
            SCOPED_TRACE(::testing::Message()
                         << "m=" << m << " n=" << n << " k=" << k
                         << " transA=" << ta << " transB=" << tb);
            expectMatchesReference(t, c, ref, "gemm");
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(KernelGemmTest, AlphaBetaEdgeCases) {
  const int m = 17, n = 33, k = 129;  // covers edge tiles in both dims
  const struct {
    float alpha, beta;
  } cases[] = {{1.0f, 0.0f}, {0.5f, 0.3f}, {0.0f, 0.7f},
               {1.0f, 1.0f}, {2.0f, -1.0f}};
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c0(static_cast<std::size_t>(m) * n);
  lcgFill(a, 11);
  lcgFill(b, 23);
  lcgFill(c0, 37);
  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    for (const auto& cs : cases) {
      std::vector<float> c = c0;
      std::vector<float> ref(c.size());
      gemm(false, false, m, n, k, cs.alpha, a.data(), k, b.data(), n,
           cs.beta, c.data(), n);
      refGemm(false, false, m, n, k, cs.alpha, a.data(), k, b.data(), n,
              cs.beta, c0.data(), ref.data(), n);
      SCOPED_TRACE(::testing::Message() << "alpha=" << cs.alpha
                                        << " beta=" << cs.beta
                                        << " target=" << kernelTargetName(t));
      expectMatchesReference(t, c, ref, "gemm alpha/beta");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Regression: beta == 0 must store zero, not multiply — a C buffer
// holding NaN/Inf (e.g. uninitialized scratch) must be fully
// overwritten with finite values (BLAS semantics).
TEST(KernelGemmTest, BetaZeroOverwritesNanAndInf) {
  const int m = 13, n = 29, k = 17;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  lcgFill(a, 5);
  lcgFill(b, 9);
  const float poison[] = {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()};
  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    for (std::size_t i = 0; i < c.size(); ++i) c[i] = poison[i % 3];
    std::vector<float> ref(c.size());
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    refGemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
            nullptr, ref.data(), n);
    for (const float v : c) ASSERT_TRUE(std::isfinite(v));
    expectMatchesReference(t, c, ref, "gemm beta=0 poison");

    // alpha == 0 && beta == 0: exact zeros even from poison.
    for (std::size_t i = 0; i < c.size(); ++i) c[i] = poison[i % 3];
    gemm(false, false, m, n, k, 0.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    for (const float v : c) ASSERT_EQ(v, 0.0f);
  }
}

// The determinism contract: for a fixed target, results are
// bit-identical at every DP_THREADS setting (chunking is a function of
// shape alone and each element's accumulation order is fixed).
TEST(KernelGemmTest, BitIdenticalAcrossThreadCounts) {
  const int m = 129, n = 65, k = 300;  // k > one K-block (256)
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  lcgFill(a, 41);
  lcgFill(b, 43);
  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    std::vector<std::vector<float>> results;
    for (const int threads : {1, 2, 4}) {
      test::ScopedDpThreads scoped(threads);
      std::vector<float> c(static_cast<std::size_t>(m) * n, -3.0f);
      gemm(false, true, m, n, k, 1.0f, a.data(), k, b.data(), k, 0.5f,
           c.data(), n);
      results.push_back(std::move(c));
    }
    for (std::size_t r = 1; r < results.size(); ++r)
      ASSERT_EQ(0, std::memcmp(results[0].data(), results[r].data(),
                               results[0].size() * sizeof(float)))
          << "target " << kernelTargetName(t)
          << " not bit-identical across DP_THREADS";
  }
}

// The direct path must agree with the im2col+GEMM route it replaces:
// bit-exactly on the scalar target (identical per-element operation
// sequences), within FMA tolerance on AVX2.
TEST(KernelConvTest, DirectMatchesIm2colRoute) {
  const struct {
    ConvGeom g;
    int outC;
  } cases[] = {
      {{1, 24, 24, 3, 2, 1}, 8},   // TCAE encoder conv1
      {{1, 24, 24, 3, 1, 1}, 4},   // stride 1
      {{1, 11, 7, 3, 2, 1}, 3},    // non-square, odd sizes
      {{1, 8, 8, 1, 1, 0}, 2},     // 1x1 kernel, no padding
      {{1, 9, 9, 5, 2, 2}, 3},     // larger kernel, pad 2
      {{1, 6, 6, 3, 3, 1}, 2},     // stride 3
  };
  for (const auto& cs : cases) {
    ASSERT_TRUE(convDirectApplicable(cs.g));
    const int rows = cs.g.colRows();
    const int cols = cs.g.colCols();
    std::vector<float> image(
        static_cast<std::size_t>(cs.g.height) * cs.g.width);
    std::vector<float> weights(static_cast<std::size_t>(cs.outC) * rows);
    std::vector<float> bias(static_cast<std::size_t>(cs.outC));
    lcgFill(image, static_cast<std::uint32_t>(cs.g.height * 7 + cs.outC));
    lcgFill(weights, static_cast<std::uint32_t>(cs.g.kernel * 13 + 1));
    lcgFill(bias, 3);
    std::vector<float> colbuf(static_cast<std::size_t>(rows) * cols);
    im2col(cs.g, image.data(), colbuf.data());
    for (const KernelTarget t : supportedKernelTargets()) {
      ScopedKernelTarget guard(t);
      // Reference route: gemm over the column matrix, then the same
      // single bias add per element the direct path performs.
      std::vector<float> ref(static_cast<std::size_t>(cs.outC) * cols);
      gemm(false, false, cs.outC, cols, rows, 1.0f, weights.data(), rows,
           colbuf.data(), cols, 0.0f, ref.data(), cols);
      for (int oc = 0; oc < cs.outC; ++oc)
        for (int i = 0; i < cols; ++i)
          ref[static_cast<std::size_t>(oc) * cols + i] += bias[oc];
      std::vector<float> got(ref.size(), 99.0f);
      convDirect(cs.g, cs.outC, weights.data(), bias.data(), image.data(),
                 got.data());
      SCOPED_TRACE(::testing::Message()
                   << "H=" << cs.g.height << " W=" << cs.g.width
                   << " K=" << cs.g.kernel << " s=" << cs.g.stride
                   << " pad=" << cs.g.pad << " outC=" << cs.outC);
      expectMatchesReference(t, got, ref, "convDirect");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(KernelConvTest, MultiChannelNotApplicable) {
  ConvGeom g{8, 12, 12, 3, 2, 1};
  EXPECT_FALSE(convDirectApplicable(g));
}

}  // namespace
}  // namespace dp::nn
