#include <gtest/gtest.h>

#include "squish/canonical.hpp"
#include "squish/complexity.hpp"
#include "squish/extract.hpp"
#include "squish/hash.hpp"
#include "squish/pad.hpp"
#include "squish/reconstruct.hpp"
#include "squish/squish_pattern.hpp"
#include "testutil.hpp"

namespace dp::squish {
namespace {

using dp::test::randomClip;
using dp::test::topo;

// ------------------------------------------------------------ Topology

TEST(Topology, ConstructionAndAccess) {
  Topology t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.onesCount(), 0);
  t.set(1, 2, 1);
  EXPECT_EQ(t.at(1, 2), 1);
  EXPECT_EQ(t.onesCount(), 1);
  EXPECT_TRUE(t.rowHasShape(1));
  EXPECT_FALSE(t.rowHasShape(0));
  EXPECT_TRUE(t.colHasShape(2));
  EXPECT_FALSE(t.colHasShape(0));
}

TEST(Topology, FromCellsNormalizesToBinary) {
  const Topology t(2, 2, {0, 3, 7, 0});
  EXPECT_EQ(t.at(0, 1), 1);
  EXPECT_EQ(t.at(1, 0), 1);
  EXPECT_EQ(t.onesCount(), 2);
}

TEST(Topology, ThrowsOnBadConstructionAndIndex) {
  EXPECT_THROW(Topology(-1, 2), std::invalid_argument);
  EXPECT_THROW(Topology(2, 2, {1, 0, 1}), std::invalid_argument);
  Topology t(2, 2);
  // The void casts keep [[nodiscard]] quiet: the THROW is the point.
  EXPECT_THROW(static_cast<void>(t.at(2, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(t.at(0, -1)), std::out_of_range);
}

TEST(Topology, RowColEquality) {
  const Topology t = topo({"##.",  //
                           "##.",  //
                           ".#."});
  EXPECT_TRUE(t.rowsEqual(1, 2));
  EXPECT_FALSE(t.rowsEqual(0, 1));
  EXPECT_FALSE(t.colsEqual(0, 1));
  EXPECT_FALSE(t.colsEqual(1, 2));
}

TEST(Topology, ToStringTopRowFirst) {
  const Topology t = topo({"#.",  //
                           ".#"});
  EXPECT_EQ(t.toString(), "#.\n.#\n");
}

TEST(Topology, LiteralHelperBottomRowIsRowZero) {
  const Topology t = topo({"#.",  //
                           ".#"});
  EXPECT_EQ(t.at(0, 1), 1);  // bottom-right
  EXPECT_EQ(t.at(1, 0), 1);  // top-left
}

// ------------------------------------------------------------- Extract

TEST(Extract, EmptyClipYieldsSingleSpaceCell) {
  const dp::Clip c(dp::Rect{0, 0, 10, 10});
  const SquishPattern p = extract(c);
  EXPECT_EQ(p.topo.rows(), 1);
  EXPECT_EQ(p.topo.cols(), 1);
  EXPECT_EQ(p.topo.onesCount(), 0);
  EXPECT_DOUBLE_EQ(p.width(), 10.0);
  EXPECT_DOUBLE_EQ(p.height(), 10.0);
}

TEST(Extract, SingleCenteredShape) {
  dp::Clip c(dp::Rect{0, 0, 10, 10});
  c.addShape(dp::Rect{2, 4, 8, 6});
  const SquishPattern p = extract(c);
  EXPECT_EQ(p.topo.rows(), 3);
  EXPECT_EQ(p.topo.cols(), 3);
  EXPECT_EQ(p.topo.at(1, 1), 1);
  EXPECT_EQ(p.topo.onesCount(), 1);
  EXPECT_EQ(p.dx, (std::vector<double>{2, 6, 2}));
  EXPECT_EQ(p.dy, (std::vector<double>{4, 2, 4}));
}

TEST(Extract, ShapeTouchingBorderAddsNoDuplicateLine) {
  dp::Clip c(dp::Rect{0, 0, 10, 10});
  c.addShape(dp::Rect{0, 0, 5, 5});
  const SquishPattern p = extract(c);
  EXPECT_EQ(p.topo.rows(), 2);
  EXPECT_EQ(p.topo.cols(), 2);
  EXPECT_EQ(p.topo.at(0, 0), 1);
  EXPECT_EQ(p.topo.onesCount(), 1);
}

TEST(Extract, PaperFigure3StyleExample) {
  // Two wires on distinct tracks with offset line ends: complexity must
  // count every distinct scan line.
  dp::Clip c(dp::Rect{0, 0, 64, 48});
  c.addShape(dp::Rect{0, 8, 40, 16});
  c.addShape(dp::Rect{24, 32, 64, 40});
  const SquishPattern p = extract(c);
  const auto cplx = complexityOfCanonical(p.topo);
  EXPECT_EQ(cplx.cx, 3);  // lines at 0,24,40,64
  EXPECT_EQ(cplx.cy, 5);  // lines at 0,8,16,32,40,48
  EXPECT_TRUE(isCanonical(p.topo));
}

TEST(Extract, IsLosslessViaReconstruct) {
  dp::Clip c(dp::Rect{0, 0, 100, 100});
  c.addShape(dp::Rect{10, 20, 40, 30});
  c.addShape(dp::Rect{50, 20, 90, 30});
  c.addShape(dp::Rect{10, 60, 90, 70});
  c.normalize();
  const dp::Clip back = reconstruct(extract(c));
  EXPECT_EQ(back, c);
}

/// Round-trip property over random (even degenerate/overlapping) clips:
/// extraction of the reconstruction equals the canonical form of the
/// original squish pattern. (Overlapping shapes can create scan lines
/// that separate identical grid rows/columns; reconstruction merges the
/// geometry into maximal rectangles, so exactly those redundant lines
/// vanish — the canonicalized patterns must match.)
class SquishRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SquishRoundTrip, ExtractReconstructExtractIsCanonical) {
  dp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 25; ++i) {
    dp::Clip c = randomClip(rng);
    c.normalize();
    const SquishPattern p1 = canonicalize(extract(c));
    const dp::Clip r1 = reconstruct(p1);
    const SquishPattern p2 = extract(r1);
    EXPECT_EQ(p1.topo, p2.topo);
    ASSERT_EQ(p1.dx.size(), p2.dx.size());
    ASSERT_EQ(p1.dy.size(), p2.dy.size());
    for (std::size_t k = 0; k < p1.dx.size(); ++k)
      EXPECT_NEAR(p1.dx[k], p2.dx[k], 1e-9);
    for (std::size_t k = 0; k < p1.dy.size(); ++k)
      EXPECT_NEAR(p1.dy[k], p2.dy[k], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SquishRoundTrip,
                         ::testing::Range(100, 110));

// ----------------------------------------------------------- Canonical

TEST(Canonical, DetectsDuplicateRowsAndCols) {
  EXPECT_TRUE(isCanonical(topo({"#.", ".#"})));
  EXPECT_FALSE(isCanonical(topo({"#.", "#."})));
  EXPECT_FALSE(isCanonical(topo({"##", ".."})));
}

TEST(Canonical, MergesDuplicateRows) {
  const Topology t = topo({"#.",  //
                           "#.",  //
                           ".#"});
  const Topology c = canonicalize(t);
  EXPECT_EQ(c, topo({"#.", ".#"}));
}

TEST(Canonical, MergesDuplicateColsAfterRows) {
  const Topology t = topo({"##..",  //
                           "##..",  //
                           "..##"});
  const Topology c = canonicalize(t);
  EXPECT_EQ(c, topo({"#.", ".#"}));
  EXPECT_TRUE(isCanonical(c));
}

TEST(Canonical, IdempotentOnCanonicalInput) {
  const Topology t = topo({"#.#", ".#."});
  EXPECT_EQ(canonicalize(t), t);
}

TEST(Canonical, AllZeroCollapsesToSingleCell) {
  const Topology c = canonicalize(Topology(5, 7));
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 1);
  EXPECT_EQ(c.onesCount(), 0);
}

TEST(Canonical, PatternVariantMergesDeltas) {
  SquishPattern p;
  // Rows bottom-to-top: ".#", "#.", "#." — the TOP two are identical,
  // so their heights (2 and 5) merge.
  p.topo = topo({"#.",  //
                 "#.",  //
                 ".#"});
  p.dx = {3, 4};
  p.dy = {1, 2, 5};
  const SquishPattern c = canonicalize(p);
  EXPECT_EQ(c.topo, topo({"#.", ".#"}));
  EXPECT_EQ(c.dy, (std::vector<double>{1, 7}));
  EXPECT_EQ(c.dx, (std::vector<double>{3, 4}));
  EXPECT_DOUBLE_EQ(c.width(), p.width());
  EXPECT_DOUBLE_EQ(c.height(), p.height());
}

TEST(Canonical, GeometryPreservedThroughReconstruction) {
  // Canonicalizing a squish pattern must not change the layout it
  // describes.
  SquishPattern p;
  p.topo = topo({"##..",  //
                 "##..",  //
                 "...."});
  p.dx = {2, 3, 4, 5};
  p.dy = {6, 1, 1};
  const dp::Clip a = reconstruct(p);
  const dp::Clip b = reconstruct(canonicalize(p));
  EXPECT_EQ(a.shapes(), b.shapes());
  EXPECT_EQ(a.window(), b.window());
}

// ----------------------------------------------------------------- Pad

TEST(Pad, PadToAnchorsBottomLeft) {
  const Topology t = topo({"#."});
  const Topology p = padTo(t, 3, 4);
  EXPECT_EQ(p.rows(), 3);
  EXPECT_EQ(p.cols(), 4);
  EXPECT_EQ(p.at(0, 0), 1);
  EXPECT_EQ(p.onesCount(), 1);
}

TEST(Pad, PadToNetworkIs24) {
  const Topology p = padToNetwork(topo({"#"}));
  EXPECT_EQ(p.rows(), 24);
  EXPECT_EQ(p.cols(), 24);
}

TEST(Pad, ThrowsWhenTooLarge) {
  EXPECT_THROW(padTo(Topology(5, 5), 4, 8), std::invalid_argument);
  EXPECT_THROW(padTo(Topology(30, 30), 24, 24), std::invalid_argument);
}

TEST(Pad, UnpadInvertsPadForShapeBoundedTopologies) {
  const Topology t = topo({".#",  //
                           "#."});
  EXPECT_EQ(unpad(padTo(t, 10, 12)), t);
}

TEST(Pad, UnpadOfAllZeroIsUnitCell) {
  const Topology u = unpad(Topology(6, 6));
  EXPECT_EQ(u.rows(), 1);
  EXPECT_EQ(u.cols(), 1);
}

/// Padding / canonicalization / unpadding interplay: stripping the
/// padding after canonicalizing the padded matrix equals canonicalizing
/// the stripped matrix — the invariant the generated-pattern identity
/// convention relies on.
class PadCanonicalProperty : public ::testing::TestWithParam<int> {};

TEST_P(PadCanonicalProperty, UnpadCommutesWithCanonicalize) {
  dp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 30; ++iter) {
    Topology t(rng.uniformInt(1, 12), rng.uniformInt(1, 12));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng.bernoulli(0.4) ? 1 : 0);
    if (t.onesCount() == 0) continue;
    const Topology viaPad = unpad(canonicalize(padToNetwork(t)));
    const Topology direct = canonicalize(unpad(t));
    EXPECT_EQ(viaPad, direct) << t.toString();
    EXPECT_EQ(hashTopology(viaPad), hashTopology(direct));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PadCanonicalProperty,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------- Complexity

TEST(Complexity, OfCanonicalIsDimensions) {
  const auto c = complexityOfCanonical(topo({"#.", ".#"}));
  EXPECT_EQ(c.cx, 2);
  EXPECT_EQ(c.cy, 2);
}

TEST(Complexity, CanonicalizesFirst) {
  const auto c = complexityOf(topo({"##..",  //
                                    "##..",  //
                                    "..##"}));
  EXPECT_EQ(c.cx, 2);
  EXPECT_EQ(c.cy, 2);
}

// ---------------------------------------------------------------- Hash

TEST(Hash, EqualTopologiesHashEqual) {
  const Topology a = topo({"#.", ".#"});
  const Topology b = topo({"#.", ".#"});
  EXPECT_EQ(hashTopology(a), hashTopology(b));
}

TEST(Hash, DifferentContentHashesDiffer) {
  EXPECT_NE(hashTopology(topo({"#.", ".#"})),
            hashTopology(topo({".#", "#."})));
}

TEST(Hash, DimensionsParticipate) {
  // A 1x4 and a 4x1 all-shape topology have identical cell streams.
  EXPECT_NE(hashTopology(Topology(1, 4, {1, 1, 1, 1})),
            hashTopology(Topology(4, 1, {1, 1, 1, 1})));
}

TEST(Hash, CanonicalHashMergesEquivalents) {
  EXPECT_EQ(hashCanonical(topo({"#.", "#."})),
            hashCanonical(topo({"#."})));
}

// --------------------------------------------------------------- Storage

TEST(Storage, PaperExampleIs29Point5Bytes) {
  // Paper §III-A: 3x4 topology + 4+3 geometry values in a 64x64 clip:
  // 1.5 bytes topology + 28 bytes vectors = 29.5 vs 512 bytes raster.
  SquishPattern p;
  p.topo = Topology(3, 4);
  p.dx = {16, 16, 16, 16};
  p.dy = {20, 20, 24};
  EXPECT_DOUBLE_EQ(squishStorageBytes(p), 29.5);
  EXPECT_DOUBLE_EQ(imageStorageBytes(64, 64), 512.0);
}

TEST(Storage, SquishBeatsRasterOnRealisticClips) {
  dp::Clip c(dp::Rect{0, 0, 192, 192});
  c.addShape(dp::Rect{0, 16, 100, 32});
  c.addShape(dp::Rect{120, 16, 192, 32});
  c.addShape(dp::Rect{30, 80, 150, 96});
  const SquishPattern p = extract(c);
  EXPECT_LT(squishStorageBytes(p), imageStorageBytes(192, 192));
}

// ------------------------------------------------------- SquishPattern

TEST(SquishPattern, ConsistencyChecks) {
  SquishPattern p;
  p.topo = Topology(2, 2);
  p.dx = {1, 2};
  p.dy = {3, 4};
  EXPECT_TRUE(p.isConsistent());
  p.dx = {1};
  EXPECT_FALSE(p.isConsistent());
  p.dx = {1, 0};
  EXPECT_FALSE(p.isConsistent());  // non-positive delta
}

TEST(SquishPattern, ScanLinesAccumulate) {
  SquishPattern p;
  p.topo = Topology(2, 3);
  p.dx = {1, 2, 3};
  p.dy = {4, 5};
  p.x0 = 10;
  p.y0 = 20;
  EXPECT_EQ(p.xLines(), (std::vector<double>{10, 11, 13, 16}));
  EXPECT_EQ(p.yLines(), (std::vector<double>{20, 24, 29}));
}

TEST(SquishPattern, ReconstructRejectsInconsistent) {
  SquishPattern p;
  p.topo = Topology(2, 2);
  p.dx = {1};
  p.dy = {1, 1};
  EXPECT_THROW(reconstruct(p), std::invalid_argument);
}

}  // namespace
}  // namespace dp::squish
