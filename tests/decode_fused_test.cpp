// Fused decode route equivalence suite (ctest label: kernel) —
// DESIGN.md §14.
//
// The fused route replaces float activations with bit-packed row
// masks between decode and assessment, so its contract is exact
// equivalence with the float reference path on everything downstream
// of binarization:
//   * the packed canonicalize/hash/pack ops reproduce the float
//     path's results bit-for-bit, including the pinned seeded corpus
//     in tests/fixtures/canonical_hashes.inc (shared with the
//     pipeline suite — a drift here means stored libraries built by
//     the two routes would diverge);
//   * decodeMasks output is bit-identical across every dispatch
//     target and DP_THREADS setting;
//   * on a trained model, the fused route's per-sample topology,
//     legality verdict, canonical hash and packed bytes match the
//     unfused float path on every target at DP_THREADS 1 and 8.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "core/flows.hpp"
#include "core/fused_generate.hpp"
#include "datagen/generator.hpp"
#include "drc/packed_rules.hpp"
#include "drc/topology_rules.hpp"
#include "geometry/design_rules.hpp"
#include "models/tcae.hpp"
#include "models/topology_codec.hpp"
#include "pipeline/packed.hpp"
#include "squish/canonical.hpp"
#include "squish/hash.hpp"
#include "squish/packed_topo.hpp"
#include "squish/topology.hpp"
#include "tensor/gemm.hpp"
#include "testutil.hpp"

namespace {

using dp::KernelTarget;
using dp::nn::setGemmKernelTarget;
using dp::nn::supportedKernelTargets;

class ScopedKernelTarget {
 public:
  explicit ScopedKernelTarget(KernelTarget t)
      : saved_(dp::nn::gemmKernelTarget()) {
    setGemmKernelTarget(t);
  }
  ~ScopedKernelTarget() { setGemmKernelTarget(saved_); }
  ScopedKernelTarget(const ScopedKernelTarget&) = delete;
  ScopedKernelTarget& operator=(const ScopedKernelTarget&) = delete;

 private:
  KernelTarget saved_;
};

dp::squish::Topology randomTopology(dp::Rng& rng, int maxDim,
                                    double density) {
  const int rows = rng.uniformInt(1, maxDim);
  const int cols = rng.uniformInt(1, maxDim);
  dp::squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      t.set(r, c, rng.bernoulli(density) ? 1 : 0);
  return t;
}

// ------------------------------------------- packed ops vs float ops

// The pinned seeded corpus: the packed-word canonicalize/hash/pack
// pipeline must reproduce both the float path and the checked-in pin
// (the same one pipeline_test verifies for the float path, so the two
// suites cross-check each other).
TEST(PackedCanonicalOps, MatchFloatPathOnPinnedCorpus) {
  struct CorpusEntry {
    std::uint64_t hash;
    std::uint32_t crc;  // record CRC, pinned by the pipeline suite
  };
  static constexpr CorpusEntry kCorpus[] = {
#include "fixtures/canonical_hashes.inc"
  };
  dp::Rng rng(424242);
  for (const CorpusEntry& expected : kCorpus) {
    const dp::squish::Topology t = randomTopology(rng, 10, 0.4);
    const dp::squish::Topology canon = dp::squish::canonicalize(t);

    std::uint32_t masks[dp::squish::kMaxMaskCols] = {};
    dp::squish::topologyToMasks(t, masks);
    int rows = t.rows();
    int cols = t.cols();
    dp::squish::canonicalizeMasks(masks, rows, cols);

    ASSERT_EQ(rows, canon.rows());
    ASSERT_EQ(cols, canon.cols());
    EXPECT_EQ(dp::squish::masksToTopology(masks, rows, cols), canon);
    EXPECT_EQ(dp::squish::hashMasks(masks, rows, cols), expected.hash);
    EXPECT_EQ(dp::squish::hashMasks(masks, rows, cols),
              dp::squish::hashTopology(canon));
    if (rows > 0 && cols > 0) {
      EXPECT_EQ(dp::pipeline::packMasks(masks, rows, cols),
                dp::pipeline::pack(canon));
    }
  }
}

// Legality on the packed canonical form must agree with the float
// checker (which canonicalizes internally) on arbitrary topologies.
TEST(PackedCanonicalOps, LegalityMatchesFloatChecker) {
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(dp::euv7nmM2()));
  dp::Rng rng(20190604);
  for (int i = 0; i < 400; ++i) {
    const dp::squish::Topology t = randomTopology(rng, 14, 0.35);
    std::uint32_t masks[dp::squish::kMaxMaskCols] = {};
    dp::squish::topologyToMasks(t, masks);
    int rows = t.rows();
    int cols = t.cols();
    dp::squish::canonicalizeMasks(masks, rows, cols);
    EXPECT_EQ(dp::drc::isLegalCanonicalMasks(checker.config(), masks, rows,
                                             cols),
              checker.isLegal(t))
        << "packed/float legality verdicts diverge for:\n"
        << t.toString();
  }
}

// ------------------------------------------- fused decode route

/// Trained world shared by the route-equivalence tests (built once per
/// process). Training saturates the decoder's logits away from the
/// sigmoid(x) = 0.5 boundary, so binarized equality between the fused
/// sign-test epilogue and the float sigmoid-threshold path is exact.
struct TrainedWorld {
  dp::drc::TopologyChecker checker;
  dp::models::Tcae tcae;
  dp::nn::Tensor latents;
};

const TrainedWorld& trainedWorld() {
  static const TrainedWorld* world = [] {
    dp::Rng rng(2019);
    const dp::DesignRules rules = dp::euv7nmM2();
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(1), rules, 24, rng);
    const auto topologies = dp::datagen::extractTopologies(clips);
    dp::models::TcaeConfig cfg;
    cfg.trainSteps = 150;
    auto* w = new TrainedWorld{
        dp::drc::TopologyChecker(
            dp::drc::TopologyRuleConfig::fromRules(rules)),
        dp::models::Tcae(cfg, rng), dp::nn::Tensor()};
    w->tcae.train(topologies, rng);
    // Source-pool latents plus perturbations: the same latent
    // population the generation flows decode.
    w->latents = dp::core::encodeSourceLatents(w->tcae, topologies, 96);
    for (std::size_t i = 0; i < w->latents.numel(); ++i)
      w->latents[i] += static_cast<float>(rng.uniform(-0.6, 0.6));
    return w;
  }();
  return *world;
}

// decodeMasks must be bit-identical across every dispatch target and
// thread count — even on an untrained model, where boundary-band
// logits make this the strictest cross-target statement (the float
// intermediates themselves agree bit-for-bit by construction).
TEST(FusedDecodeRoute, BitIdenticalAcrossTargetsAndThreads) {
  dp::Rng rng(7);
  dp::models::TcaeConfig cfg;
  const dp::models::Tcae tcae(cfg, rng);
  const dp::core::FusedDecodeRoute route(tcae);
  dp::nn::Tensor latents({64, cfg.latentDim});
  for (std::size_t i = 0; i < latents.numel(); ++i)
    latents[i] = static_cast<float>(rng.uniform(-2.0, 2.0));

  std::vector<std::uint32_t> reference;
  {
    ScopedKernelTarget guard(KernelTarget::kScalar);
    dp::test::ScopedDpThreads scoped(1);
    route.decodeMasks(latents, reference);
  }
  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    for (const int threads : {1, 8}) {
      dp::test::ScopedDpThreads scoped(threads);
      std::vector<std::uint32_t> masks;
      route.decodeMasks(latents, masks);
      ASSERT_EQ(masks, reference)
          << "target " << dp::kernelTargetName(t) << " DP_THREADS "
          << threads << " diverges from scalar/1";
    }
  }
}

// On the trained model, every per-sample artifact of the fused route
// — binarized topology, legality verdict, canonical hash, packed
// bytes — must match the unfused float path, on every target at
// DP_THREADS 1 and 8.
TEST(FusedDecodeRoute, MatchesFloatPathAllTargetsAndThreads) {
  const TrainedWorld& w = trainedWorld();
  const dp::core::FusedDecodeRoute route(w.tcae);
  const int edge = route.topologySize();
  const int n = w.latents.size(0);

  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    for (const int threads : {1, 8}) {
      dp::test::ScopedDpThreads scoped(threads);
      const dp::nn::Tensor activations = w.tcae.decode(w.latents);
      std::vector<std::uint32_t> masks;
      route.decodeMasks(w.latents, masks);
      ASSERT_EQ(masks.size(),
                static_cast<std::size_t>(n) * static_cast<std::size_t>(edge));

      for (int i = 0; i < n; ++i) {
        const dp::squish::Topology topo =
            dp::models::decodeGeneratedTopology(activations, i);
        const bool legal = w.checker.isLegal(topo);
        std::uint32_t sample[dp::squish::kMaxMaskCols] = {};
        for (int r = 0; r < edge; ++r)
          sample[r] = masks[static_cast<std::size_t>(i) * edge + r];
        int rows = edge;
        int cols = edge;
        dp::squish::unpadMasks(sample, rows, cols);
        ASSERT_EQ(dp::squish::masksToTopology(sample, rows, cols), topo)
            << "binarized topology diverges: target "
            << dp::kernelTargetName(t) << " sample " << i;
        dp::squish::canonicalizeMasks(sample, rows, cols);
        const dp::squish::Topology canon = dp::squish::canonicalize(topo);
        ASSERT_EQ(dp::drc::isLegalCanonicalMasks(w.checker.config(), sample,
                                                 rows, cols),
                  legal);
        ASSERT_EQ(rows, canon.rows());
        ASSERT_EQ(cols, canon.cols());
        if (rows > 0 && cols > 0) {
          ASSERT_EQ(dp::squish::hashMasks(sample, rows, cols),
                    dp::squish::hashTopology(canon));
          ASSERT_EQ(dp::pipeline::packMasks(sample, rows, cols),
                    dp::pipeline::pack(canon));
        }
      }
    }
  }
}

// The accounting folds must agree end-to-end: identical generated /
// legal tallies and an identical pattern library (size, contents and
// enumeration order) between accountActivationBatch and the fused
// accountMaskBatch.
TEST(FusedDecodeRoute, AccountingMatchesFloatPath) {
  const TrainedWorld& w = trainedWorld();
  const dp::core::FusedDecodeRoute route(w.tcae);

  for (const KernelTarget t : supportedKernelTargets()) {
    ScopedKernelTarget guard(t);
    for (const int threads : {1, 8}) {
      dp::test::ScopedDpThreads scoped(threads);
      dp::core::GenerationResult viaFloat;
      dp::core::accountActivationBatch(w.tcae.decode(w.latents), w.checker,
                                       viaFloat);
      dp::core::GenerationResult viaFused;
      std::vector<std::uint32_t> masks;
      route.decodeMasks(w.latents, masks);
      dp::core::accountMaskBatch(masks.data(), w.latents.size(0),
                                 route.topologySize(), w.checker, viaFused);

      EXPECT_EQ(viaFused.generated, viaFloat.generated);
      EXPECT_EQ(viaFused.legal, viaFloat.legal);
      ASSERT_EQ(viaFused.unique.size(), viaFloat.unique.size());
      EXPECT_EQ(viaFused.unique.patterns(), viaFloat.unique.patterns())
          << "library contents diverge: target " << dp::kernelTargetName(t)
          << " DP_THREADS " << threads;
    }
  }
}

}  // namespace
