/// \file fault_test.cpp
/// Chaos layer (DESIGN.md §11): the deterministic fault-injection
/// substrate itself (seeded replayability, spec parsing, counters),
/// crash-safe checkpoint/bundle publication (atomic-writer fault
/// windows, CRC verification, last-good fallback), deadline shedding,
/// health transitions, and a torture corpus of malformed HTTP requests
/// that must be answered or closed — never hung on.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "datagen/generator.hpp"
#include "io/json.hpp"
#include "nn/serialize.hpp"
#include "pipeline/massive.hpp"
#include "serve/server.hpp"
#include "testutil.hpp"

namespace dp {
namespace {

using serve::Bundle;
using serve::BundleBuildConfig;
using serve::BundleSpec;
using serve::PatternServer;
using test::ScopedDpThreads;

/// Every test starts and ends with a clean fault registry: fault state
/// is global by design (DP_FAULTS arms process-wide), so leaking an
/// armed site across tests would poison unrelated assertions.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::disarmAll(); }
  void TearDown() override { faults::disarmAll(); }
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out;
  char c = 0;
  while (in.get(c)) out.push_back(c);
  return out;
}

/// A minimal trained bundle (smaller than serve_test's: these tests
/// exercise publication and registry mechanics, not model quality).
std::shared_ptr<const Bundle> tinyBundle() {
  static const std::shared_ptr<const Bundle> bundle = [] {
    Rng rng(11);
    BundleSpec spec;
    spec.name = "tiny";
    spec.tcae.trainSteps = 60;
    spec.sourcePoolSize = 16;
    const auto clips = datagen::generateLibrary(
        datagen::directprintSpec(1), spec.rules, 24, rng);
    return serve::buildBundle(spec, BundleBuildConfig{},
                              datagen::extractTopologies(clips), rng);
  }();
  return bundle;
}

serve::HttpResponse postGenerate(PatternServer& server,
                                 const std::string& body) {
  serve::HttpRequest req;
  req.method = "POST";
  req.target = "/generate";
  req.body = body;
  return server.handle(req);
}

serve::HttpResponse get(PatternServer& server, const std::string& target) {
  serve::HttpRequest req;
  req.method = "GET";
  req.target = target;
  return server.handle(req);
}

// ---------------------------------------------------------------------
// The fault substrate itself.

TEST_F(FaultTest, DisabledSitesNeverFire) {
  FaultSite site("t.disabled");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(site.shouldFail());
  EXPECT_FALSE(faults::anyArmed());
}

TEST_F(FaultTest, SeededSequenceIsReplayable) {
  FaultSite site("t.replay");
  const auto pattern = [&site] {
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) fired.push_back(site.shouldFail());
    return fired;
  };

  faults::arm("t.replay", 42, 0.3);
  const std::vector<bool> first = pattern();
  const auto counters = faults::counters().at("t.replay");
  EXPECT_EQ(counters.calls, 200U);
  std::uint64_t fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_EQ(counters.fires, fires);
  EXPECT_GT(fires, 0U);
  EXPECT_LT(fires, 200U);

  // Re-arming with the same seed replays the identical sequence; a
  // different seed diverges.
  faults::arm("t.replay", 42, 0.3);
  EXPECT_EQ(pattern(), first);
  faults::arm("t.replay", 43, 0.3);
  EXPECT_NE(pattern(), first);
}

TEST_F(FaultTest, RateBoundsAlwaysAndNever) {
  FaultSite site("t.bounds");
  faults::arm("t.bounds", 1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(site.shouldFail());
  faults::arm("t.bounds", 1, 0.0);  // rate 0 disarms
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(site.shouldFail());
  EXPECT_FALSE(faults::anyArmed());
}

TEST_F(FaultTest, OrThrowCarriesSiteName) {
  FaultSite site("t.orthrow");
  faults::arm("t.orthrow", 5, 1.0);
  try {
    site.orThrow();
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.site(), "t.orthrow");
  }
}

TEST_F(FaultTest, ArmFromSpecParsesAndRejects) {
  EXPECT_EQ(faults::armFromSpec("t.a:7:0.5,t.b:9:1"), 2);
  EXPECT_TRUE(faults::anyArmed());
  FaultSite b("t.b");
  EXPECT_TRUE(b.shouldFail());

  for (const char* bad :
       {"t.a", "t.a:1", "t.a:x:0.5", "t.a:1:zero", "t.a:1:0.5x",
        ":1:0.5"}) {
    EXPECT_THROW((void)faults::armFromSpec(bad), std::invalid_argument)
        << "spec: " << bad;
  }
  // Empty specs and empty segments are tolerated (DP_FAULTS="" arms
  // nothing rather than refusing to start the process).
  EXPECT_EQ(faults::armFromSpec(""), 0);
  EXPECT_EQ(faults::armFromSpec("t.a:1:0.5,,t.b:1:1"), 2);
}

// ---------------------------------------------------------------------
// Atomic file publication under injected faults.

TEST_F(FaultTest, AtomicWriterPublishesAndChecksums) {
  const test::ScopedTempDir dir("dp_fault_atomic");
  const std::string path = dir.file("data.txt");
  AtomicFileWriter out(path);
  out.append("hello ");
  out.append("world");
  const std::uint32_t crc = out.commit();
  EXPECT_EQ(readFile(path), "hello world");
  EXPECT_EQ(crc32File(path), crc);
  EXPECT_EQ(crc, crc32("hello world"));
}

TEST_F(FaultTest, ChecksumReadFaultIsInjectable) {
  const test::ScopedTempDir dir("dp_fault_crc");
  const std::string path = dir.file("data.txt");
  AtomicFileWriter out(path);
  out.append("payload");
  const std::uint32_t crc = out.commit();

  faults::arm("io.atomic.crc", 2, 1.0);
  EXPECT_THROW((void)crc32File(path), std::runtime_error);
  faults::disarm("io.atomic.crc");

  // A failed verification pass must not perturb the file itself.
  EXPECT_EQ(crc32File(path), crc);
  EXPECT_EQ(readFile(path), "payload");
}

TEST_F(FaultTest, InjectedFaultsLeavePreviousFileIntact) {
  const test::ScopedTempDir dir("dp_fault_window");
  const std::string path = dir.file("data.txt");
  {
    AtomicFileWriter out(path);
    out.append("generation one");
    (void)out.commit();
  }
  // Each crash window: the replacement write fails, the previous
  // content survives, and no temp file is left behind.
  for (const char* site :
       {"io.atomic.write", "io.atomic.fsync", "io.atomic.rename"}) {
    faults::arm(site, 1, 1.0);
    AtomicFileWriter out(path);
    out.append("generation two");
    EXPECT_THROW((void)out.commit(), std::runtime_error) << site;
    faults::disarm(site);
    EXPECT_EQ(readFile(path), "generation one") << site;
    int entries = 0;
    for (const auto& e :
         std::filesystem::directory_iterator(dir.path())) {
      (void)e;
      ++entries;
    }
    EXPECT_EQ(entries, 1) << site << ": temp file left behind";
  }
}

TEST_F(FaultTest, RenameFaultPreservesPreviousCheckpoint) {
  const test::ScopedTempDir scratch("dp_fault_ckpt");
  const std::string path = scratch.file("t.bin");
  nn::Tensor v1({2, 3});
  for (std::size_t i = 0; i < v1.numel(); ++i)
    v1[i] = static_cast<float>(i) * 0.5F;
  nn::saveTensor(v1, path);

  nn::Tensor v2({2, 3});
  for (std::size_t i = 0; i < v2.numel(); ++i) v2[i] = -1.0F;
  faults::arm("io.atomic.rename", 3, 1.0);
  EXPECT_THROW(nn::saveTensor(v2, path), std::runtime_error);
  faults::disarm("io.atomic.rename");

  EXPECT_TRUE(test::tensorsBitEqual(nn::loadTensor(path), v1));
}

TEST_F(FaultTest, LoadOpenFaultIsInjectable) {
  const test::ScopedTempDir scratch("dp_fault_open");
  const std::string path = scratch.file("t.bin");
  nn::Tensor t({2});
  t[0] = 1.0F;
  t[1] = 2.0F;
  nn::saveTensor(t, path);
  faults::arm("nn.load.open", 9, 1.0);
  EXPECT_THROW((void)nn::loadTensor(path), std::runtime_error);
  faults::disarm("nn.load.open");
  EXPECT_TRUE(test::tensorsBitEqual(nn::loadTensor(path), t));
}

// ---------------------------------------------------------------------
// Bundle publication: CRC verification, kill windows, last-good.

/// The manifest-recorded relative path of one bundle data file.
std::string manifestDataFile(const std::string& dir,
                             const std::string& key) {
  const io::Json m = io::Json::parse(readFile(dir + "/manifest.json"));
  return dir + "/" + m.at("files").at(key).at("path").asString();
}

TEST_F(FaultTest, BundleChecksumRejectsBitFlip) {
  const test::ScopedTempDir scratch("dp_fault_crc");
  const std::string dir = scratch.file("tiny");
  tinyBundle()->save(dir);
  ASSERT_NO_THROW((void)serve::loadBundle(dir));

  const std::string victim = manifestDataFile(dir, "tcae");
  {
    std::fstream f(victim,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.get(byte);
    f.seekp(size / 2);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  try {
    (void)serve::loadBundle(dir);
    FAIL() << "expected checksum mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, BundleSizeMismatchRejectsTruncation) {
  const test::ScopedTempDir scratch("dp_fault_trunc");
  const std::string dir = scratch.file("tiny");
  tinyBundle()->save(dir);
  const std::string victim = manifestDataFile(dir, "latents");
  std::filesystem::resize_file(
      victim, std::filesystem::file_size(victim) - 8);
  try {
    (void)serve::loadBundle(dir);
    FAIL() << "expected size mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, BundleSaveCrashWindowKeepsPreviousGeneration) {
  const test::ScopedTempDir scratch("dp_fault_gen");
  const std::string dir = scratch.file("tiny");
  const auto bundle = tinyBundle();
  bundle->save(dir);
  const auto before = serve::loadBundle(dir);

  // A save that dies at any atomic-writer stage (the manifest rename
  // is the last and decisive window) must leave generation 1 loadable.
  for (const char* site :
       {"io.atomic.write", "io.atomic.rename"}) {
    faults::arm(site, 2, 1.0);
    EXPECT_THROW(bundle->save(dir), std::runtime_error) << site;
    faults::disarm(site);
    std::shared_ptr<const Bundle> after;
    ASSERT_NO_THROW(after = serve::loadBundle(dir)) << site;
    EXPECT_TRUE(test::tensorsBitEqual(after->sourceLatents(),
                                      before->sourceLatents()))
        << site;
  }

  // A clean save advances the generation and still loads.
  bundle->save(dir);
  const io::Json m = io::Json::parse(readFile(dir + "/manifest.json"));
  EXPECT_GT(m.at("generation").asLong(), 1);
  ASSERT_NO_THROW((void)serve::loadBundle(dir));
}

TEST_F(FaultTest, RegistrySkipsCorruptDirAndKeepsLastGood) {
  const test::ScopedTempDir scratch("dp_fault_registry");
  const std::string& root = scratch.path();
  const auto bundle = tinyBundle();
  bundle->save(root + "/good");
  bundle->save(root + "/broken");
  std::filesystem::resize_file(
      manifestDataFile(root + "/broken", "tcae"), 10);

  serve::BundleRegistry registry;
  std::vector<std::string> errors;
  EXPECT_EQ(registry.loadDirectory(root, &errors), 1);
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("broken"), std::string::npos);
  EXPECT_NE(registry.find("tiny"), nullptr);

  // An injected load fault on a reload pass must not evict the
  // last-good bundle already registered.
  const auto lastGood = registry.find("tiny");
  faults::arm("serve.bundle.load", 4, 1.0);
  errors.clear();
  EXPECT_EQ(registry.loadDirectory(root, &errors), 0);
  EXPECT_EQ(errors.size(), 2U);
  faults::disarm("serve.bundle.load");
  EXPECT_EQ(registry.find("tiny"), lastGood);
}

// ---------------------------------------------------------------------
// Deadline shedding and fault-driven shed determinism.

TEST_F(FaultTest, DeadlineExpiredRequestIsShedWith503) {
  PatternServer server;
  server.registry().add(tinyBundle());
  server.setHealth(PatternServer::Health::kReady);

  // Occupy the batcher with a long job, then keep submitting requests
  // with a 1 ms budget: one of them must land while a decode batch is
  // in flight, wait out its budget in the queue, and be shed. (A 200
  // just means that attempt was processed within its budget — retry.)
  std::atomic<bool> bigDone{false};
  std::thread big([&server, &bigDone] {
    (void)postGenerate(server,
                       "{\"bundle\":\"tiny\",\"count\":20000,\"seed\":1}");
    bigDone.store(true);
  });
  serve::HttpResponse res;
  bool shed = false;
  while (!shed && !bigDone.load()) {
    res = postGenerate(
        server,
        "{\"bundle\":\"tiny\",\"count\":8,\"seed\":2,\"deadline_ms\":1}");
    shed = res.status == 503;
  }
  big.join();
  ASSERT_TRUE(shed) << "no attempt was shed while the big job ran";
  bool retryAfter = false;
  for (const auto& [name, value] : res.extraHeaders)
    retryAfter = retryAfter || name == "Retry-After";
  EXPECT_TRUE(retryAfter);

  const auto metrics = get(server, "/metrics");
  EXPECT_NE(metrics.body.find("dp_shed_total{reason=\"deadline\"}"),
            std::string::npos);
  EXPECT_GE(server.metrics().shedTotal(), 1U);
}

TEST_F(FaultTest, InvalidDeadlineRejected) {
  PatternServer server;
  server.registry().add(tinyBundle());
  EXPECT_EQ(postGenerate(server, "{\"bundle\":\"tiny\",\"deadline_ms\":-5}")
                .status,
            400);
}

/// The acceptance criterion: identical fault seeds reproduce identical
/// shed sequences regardless of thread count (requests are submitted
/// sequentially, so per-site call order is fixed).
TEST_F(FaultTest, AdmitFaultShedSequenceIsThreadCountInvariant) {
  const auto run = [] {
    PatternServer server;
    server.registry().add(tinyBundle());
    faults::arm("serve.batcher.admit", 77, 0.5);
    std::string statuses;
    for (int i = 0; i < 16; ++i) {
      const auto res = postGenerate(
          server, "{\"bundle\":\"tiny\",\"count\":8,\"seed\":" +
                      std::to_string(i + 1) + "}");
      statuses += res.status == 200 ? 'A' : 'S';
      EXPECT_TRUE(res.status == 200 || res.status == 429) << res.status;
    }
    faults::disarm("serve.batcher.admit");
    return statuses;
  };

  std::string one;
  std::string eight;
  {
    ScopedDpThreads threads(1);
    one = run();
  }
  {
    ScopedDpThreads threads(8);
    eight = run();
  }
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find('A'), std::string::npos);
  EXPECT_NE(one.find('S'), std::string::npos);
}

TEST_F(FaultTest, DecodeFaultFailsRequestNotServer) {
  PatternServer server;
  server.registry().add(tinyBundle());
  faults::arm("serve.batcher.decode", 6, 1.0);
  const auto failed =
      postGenerate(server, "{\"bundle\":\"tiny\",\"count\":8,\"seed\":1}");
  EXPECT_EQ(failed.status, 500);
  faults::disarm("serve.batcher.decode");
  const auto ok =
      postGenerate(server, "{\"bundle\":\"tiny\",\"count\":8,\"seed\":1}");
  EXPECT_EQ(ok.status, 200) << ok.body;
}

// ---------------------------------------------------------------------
// Health state machine.

TEST_F(FaultTest, HealthTransitions) {
  PatternServer server;
  EXPECT_EQ(get(server, "/healthz").status, 503);
  EXPECT_NE(get(server, "/healthz").body.find("\"starting\""),
            std::string::npos);

  server.setHealth(PatternServer::Health::kReady);
  EXPECT_EQ(get(server, "/healthz").status, 200);

  // A partially corrupt bundle root degrades but keeps serving.
  const test::ScopedTempDir scratch2("dp_fault_health");
  const std::string& root = scratch2.path();
  tinyBundle()->save(root + "/good");
  tinyBundle()->save(root + "/broken");
  std::filesystem::resize_file(
      manifestDataFile(root + "/broken", "latents"), 4);
  std::vector<std::string> errors;
  EXPECT_EQ(server.loadBundles(root, &errors), 1);
  EXPECT_EQ(errors.size(), 1U);
  EXPECT_EQ(server.health(), PatternServer::Health::kDegraded);
  const auto degraded = get(server, "/healthz");
  EXPECT_EQ(degraded.status, 200);
  EXPECT_NE(degraded.body.find("\"degraded\""), std::string::npos);

  // A clean reload restores ready; stop() drains.
  std::filesystem::remove_all(root + "/broken");
  EXPECT_EQ(server.loadBundles(root), 1);
  EXPECT_EQ(server.health(), PatternServer::Health::kReady);
  server.stop();
  const auto draining = get(server, "/healthz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("\"draining\""), std::string::npos);
}

TEST_F(FaultTest, MetricsExposeShedAndFaultCounters) {
  serve::Metrics metrics;
  metrics.countShed("queue_full");
  metrics.countShed("queue_full");
  metrics.countShed("deadline");
  EXPECT_EQ(metrics.shedTotal(), 3U);
  FaultSite site("t.metrics");
  faults::arm("t.metrics", 8, 1.0);
  (void)site.shouldFail();
  const std::string text = metrics.renderPrometheus();
  EXPECT_NE(text.find("dp_shed_total{reason=\"queue_full\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dp_shed_total{reason=\"deadline\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_fault_calls_total{site=\"t.metrics\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_fault_fires_total{site=\"t.metrics\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Massive-pipeline checkpoint sites (DESIGN.md §12): every
// pipeline.checkpoint.* boundary's fire/call sequence is a pure
// function of (seed, rate, call index) — bit-identical at any
// DP_THREADS, because all boundary sites fire on the coordinator
// thread — and the counters surface on the metrics endpoint like any
// other site's.

pipeline::MassiveConfig tinyMassiveConfig(const std::string& dir) {
  pipeline::MassiveConfig config;
  config.dir = dir;
  config.count = 512;
  config.batchSize = 64;
  config.checkpointEvery = 128;
  config.patternsPerSegment = 16;
  config.seed = 31;
  return config;
}

pipeline::MassiveResult runTinyMassive(const pipeline::MassiveConfig& c,
                                       serve::Metrics* metrics = nullptr) {
  const auto bundle = tinyBundle();
  return pipeline::runMassive(bundle->tcae(), bundle->sourceLatents(),
                              bundle->perturber(), bundle->checker(), c,
                              metrics);
}

TEST_F(FaultTest, PipelineCheckpointSitesReplayable) {
  const std::vector<std::string> sites = {
      "pipeline.checkpoint.plan",   "pipeline.checkpoint.decode",
      "pipeline.checkpoint.assess", "pipeline.checkpoint.dedup",
      "pipeline.checkpoint.seal",   "pipeline.checkpoint.commit",
      "pipeline.checkpoint.resume"};
  for (const std::string& site : sites) {
    SCOPED_TRACE(site);
    std::optional<FaultCounters> reference;
    for (const int threads : {1, 8}) {
      ScopedDpThreads guard(threads);
      test::ScopedTempDir dir("dp_fault_ppl_" + std::to_string(threads));
      const pipeline::MassiveConfig config =
          tinyMassiveConfig(dir.path());
      // A clean half-run commits a manifest, so the armed run below
      // also exercises the resume boundary.
      pipeline::MassiveConfig half = config;
      half.count = 256;
      (void)runTinyMassive(half);
      faults::arm(site, 29, 0.5);
      try {
        (void)runTinyMassive(config);
      } catch (const FaultInjected& e) {
        EXPECT_EQ(e.site(), site);
      }
      const FaultCounters counters = faults::counters().at(site);
      faults::disarmAll();
      EXPECT_GT(counters.calls, 0U);
      if (!reference) {
        reference = counters;
      } else {
        EXPECT_EQ(counters.calls, reference->calls)
            << "boundary call sequence depends on DP_THREADS";
        EXPECT_EQ(counters.fires, reference->fires)
            << "boundary fire sequence depends on DP_THREADS";
      }
    }
  }
}

TEST_F(FaultTest, PipelineCheckpointCountersReachMetricsSurface) {
  test::ScopedTempDir dir("dp_fault_ppl_metrics");
  pipeline::MassiveConfig config = tinyMassiveConfig(dir.path());
  config.count = 128;
  // Armed at a vanishing rate: counts calls without ever firing.
  faults::arm("pipeline.checkpoint.decode", 7, 1e-12);
  serve::Metrics metrics;
  (void)runTinyMassive(config, &metrics);
  const std::string text = metrics.renderPrometheus();
  EXPECT_NE(
      text.find(
          "dp_fault_calls_total{site=\"pipeline.checkpoint.decode\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("dp_pipeline_stage_items_total{stage=\"decode\"} "
                      "128"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------
// HTTP torture corpus: every malformed request is answered or the
// connection closed — never a hang, never a crash.

struct RawReply {
  int status = 0;          ///< 0 = connection closed with no response
  double elapsedMs = 0.0;
  bool connected = false;
};

/// Sends raw bytes, optionally half-closes, and reads to EOF with a
/// client-side receive timeout so a hung server fails the test instead
/// of wedging it.
RawReply rawCall(int port, const std::string& bytes, bool halfClose) {
  RawReply reply;
  const auto start = std::chrono::steady_clock::now();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  timeval tv{};
  tv.tv_sec = 4;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return reply;
  }
  reply.connected = true;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  if (halfClose) ::shutdown(fd, SHUT_WR);
  std::string raw;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    raw.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0)
    reply.status = std::atoi(raw.c_str() + 9);
  reply.elapsedMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return reply;
}

TEST_F(FaultTest, MalformedHttpTortureCorpus) {
  PatternServer::Config config;
  config.http.maxHeaderBytes = 2048;
  config.http.maxBodyBytes = 4096;
  config.http.recvTimeoutSec = 2;
  config.http.sendTimeoutSec = 2;
  PatternServer server(config);
  server.start();
  const int port = server.port();

  struct Case {
    const char* label;
    std::string bytes;
    int expectStatus;  ///< 0 = clean close with no response is fine
    bool halfClose = false;
  };
  std::string hugeHead = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 64; ++i)
    hugeHead += "X-Pad-" + std::to_string(i) + ": " +
                std::string(64, 'a') + "\r\n";
  hugeHead += "\r\n";
  const std::vector<Case> corpus = {
      {"garbage line", "GARBAGE\r\n\r\n", 400},
      {"bad version", "GET /healthz NOTHTTP/9\r\n\r\n", 400},
      {"missing target", "GET\r\n\r\n", 400},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"non-numeric content-length",
       "POST /generate HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400},
      {"trailing junk content-length",
       "POST /generate HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n", 400},
      {"negative content-length",
       "POST /generate HTTP/1.1\r\nContent-Length: -4\r\n\r\n", 400},
      {"huge content-length",
       "POST /generate HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
       413},
      {"oversized header block", hugeHead, 431},
      {"premature close mid-body",
       "POST /generate HTTP/1.1\r\nContent-Length: 64\r\n\r\nshort", 0,
       true},
      {"binary garbage then close",
       std::string("\x00\x01\xfe\xff barely text", 18), 0, true},
  };
  for (const auto& c : corpus) {
    const RawReply reply = rawCall(port, c.bytes, c.halfClose);
    ASSERT_TRUE(reply.connected) << c.label;
    EXPECT_LT(reply.elapsedMs, 5000.0) << c.label << ": hung";
    EXPECT_EQ(reply.status, c.expectStatus) << c.label;
  }

  // After the whole corpus the server still answers a clean request.
  const RawReply ok = rawCall(
      port,
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
      false);
  EXPECT_EQ(ok.status, 200);
  server.stop();
}

}  // namespace
}  // namespace dp
