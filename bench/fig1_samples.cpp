// Reproduces paper Fig. 1: sample pattern topologies from (a) the
// industry Monte-Carlo tool, (b) a DCGAN trained directly on topologies,
// and (c) the TCAE. The qualitative claim: the industry tool produces
// repetitive simple topologies, the DCGAN produces mostly illegal ones
// (bow-ties / adjacent tracks), and the TCAE produces varied legal ones.

#include <iostream>

#include "bench_common.hpp"
#include "core/perturb.hpp"
#include "io/ascii_art.hpp"
#include "models/gan.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"
#include "squish/extract.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  scale.count = args.getLong("count", 6);  // samples per method
  dp::bench::printHeader("Fig. 1 — sample topologies per generator",
                         scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);

  // (a) Industry tool.
  std::cout << "(a) Industry Monte-Carlo tool:\n";
  {
    std::vector<dp::squish::Topology> samples;
    const auto spec = dp::datagen::industryToolSpec();
    while (static_cast<long>(samples.size()) < scale.count) {
      const auto clip = dp::datagen::generateClip(spec, rules, rng);
      if (clip.empty()) continue;
      samples.push_back(dp::squish::extract(clip).topo);
    }
    std::cout << dp::io::renderTopologyRow(samples) << "\n";
  }

  // (b) DCGAN trained directly on topology images.
  std::cout << "(b) DCGAN (direct topology generation):\n";
  {
    dp::models::Gan dcgan = dp::models::makeDcgan(rng);
    dp::models::GanConfig gcfg;
    gcfg.trainSteps = scale.ganSteps;
    dcgan.train(dp::models::encodeTopologies(data.topologies), gcfg, rng);
    const auto raw = dcgan.sample(static_cast<int>(scale.count), rng);
    std::vector<dp::squish::Topology> samples;
    int legal = 0;
    for (const auto& t : dp::models::decodeGeneratedTopologies(raw)) {
      samples.push_back(dp::squish::canonicalize(t));
      if (checker.isLegal(t)) ++legal;
    }
    std::cout << dp::io::renderTopologyRow(samples) << "\n";
    std::cout << "   (" << legal << "/" << scale.count
              << " legal — expect few; bow-ties and 2D wires dominate)\n\n";
  }

  // (c) TCAE with sensitivity-aware latent perturbation.
  std::cout << "(c) TCAE (latent perturbation):\n";
  {
    auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);
    const auto sens =
        dp::bench::sensitivities(tcae, data.topologies, checker);
    const dp::core::SensitivityAwarePerturber perturber(sens);
    dp::core::FlowConfig fcfg;
    fcfg.count = 64 * scale.count;  // sample until we have enough legal
    const auto result = dp::core::tcaeRandom(tcae, data.topologies,
                                             perturber, checker, fcfg, rng);
    const auto patterns = result.unique.patterns();
    std::vector<dp::squish::Topology> samples(
        patterns.begin(),
        patterns.begin() + std::min<std::size_t>(patterns.size(),
                                                 static_cast<std::size_t>(
                                                     scale.count)));
    std::cout << dp::io::renderTopologyRow(samples) << "\n";
    std::cout << "   (" << result.unique.size()
              << " unique legal topologies from " << result.generated
              << " samples)\n";
  }
  return 0;
}
