// Reproduces paper Table III: TCAE-Random vs G-TCAE vs V-TCAE on the
// five benchmark groups (directprint1..5) — unique DRC-clean pattern
// count and diversity H per method, plus the training-set statistics.
//
// Expected shape (paper): both flows raise diversity well above the
// training set (2.91 -> ~3.7 on average); G-TCAE produces ~5.8% more
// unique DRC-clean patterns than TCAE at similar diversity; V-TCAE
// behaves like G-TCAE.

#include <iostream>

#include "bench_common.hpp"
#include "core/gtcae.hpp"
#include "core/perturb.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  const int groups = static_cast<int>(args.getLong("groups", 5));
  dp::bench::printHeader(
      "Table III — TCAE vs G-TCAE vs V-TCAE, massive pattern generation",
      scale.describe());

  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));

  dp::io::Table table({"Benchmark", "Train #", "Train H",  //
                       "TCAE #", "TCAE H",                 //
                       "G-TCAE #", "G-TCAE H",             //
                       "V-TCAE #", "V-TCAE H"});
  double tcaeTotal = 0, gtcaeTotal = 0;

  for (int bm = 1; bm <= groups; ++bm) {
    dp::Rng rng(scale.seed + static_cast<std::uint64_t>(bm));
    auto data = dp::bench::loadBenchmark(bm, rules, scale.clips, rng);
    const auto train = dp::core::libraryResult(data.topologies, checker);

    auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);
    const auto sens =
        dp::bench::sensitivities(tcae, data.topologies, checker);
    const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);

    dp::core::FlowConfig fcfg;
    fcfg.count = scale.count;
    fcfg.collectGoodVectors = true;
    const auto tcaeResult = dp::core::tcaeRandom(
        tcae, data.topologies, perturber, checker, fcfg, rng);

    dp::core::GtcaeConfig gcfg;
    gcfg.flow.count = scale.count;
    gcfg.gan.trainSteps = scale.ganSteps;
    const auto good = dp::core::vectorsToTensor(tcaeResult.goodVectors);
    const auto gtcaeResult = dp::core::gtcaeMassive(
        tcae, data.topologies, good, checker, gcfg, rng);

    gcfg.guide = dp::core::GtcaeConfig::Guide::kVae;
    gcfg.vaeTrainSteps = scale.ganSteps;
    const auto vtcaeResult = dp::core::gtcaeMassive(
        tcae, data.topologies, good, checker, gcfg, rng);

    table.addRow({data.spec.name,
                  std::to_string(train.unique.size()),
                  dp::io::Table::num(train.unique.diversity(), 2),
                  std::to_string(tcaeResult.unique.size()),
                  dp::io::Table::num(tcaeResult.unique.diversity(), 2),
                  std::to_string(gtcaeResult.unique.size()),
                  dp::io::Table::num(gtcaeResult.unique.diversity(), 2),
                  std::to_string(vtcaeResult.unique.size()),
                  dp::io::Table::num(vtcaeResult.unique.diversity(), 2)});
    tcaeTotal += static_cast<double>(tcaeResult.unique.size());
    gtcaeTotal += static_cast<double>(gtcaeResult.unique.size());
    std::cout << "  [" << data.spec.name << "] TCAE "
              << tcaeResult.unique.size() << " / G-TCAE "
              << gtcaeResult.unique.size() << " / V-TCAE "
              << vtcaeResult.unique.size() << "\n";
  }

  std::cout << "\n" << table.toString();
  if (tcaeTotal > 0) {
    std::cout << "\nG-TCAE vs TCAE unique-pattern gain: "
              << dp::io::Table::num(
                     100.0 * (gtcaeTotal - tcaeTotal) / tcaeTotal, 1)
              << "% (paper: ~+5.8%)\n";
  }
  return 0;
}
