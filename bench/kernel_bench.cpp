// Kernel-layer benchmark: GFLOP/s of the packed GEMM at every dispatch
// target over TCAE-shaped and square problems, plus the im2col-free
// direct conv path, against an embedded copy of the pre-kernel-layer
// scalar GEMM as the historical baseline.
//
//   kernel_bench [--json FILE] [--reps N] [--threads N]
//   kernel_bench --check bench/baselines/kernels.json [--max-regress R]
//
// --json writes the machine-readable report (BENCH_kernels.json in CI,
// uploaded as an artifact). --check re-measures every entry named in a
// checked-in baseline file and exits non-zero if any regresses by more
// than R (default 0.2) below its recorded GFLOP/s — the CI perf gate.
// Measurements default to a single thread so numbers are comparable
// across hosts with different core counts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "io/json.hpp"
#include "tensor/conv_direct.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace {

/// The pre-kernel-layer GEMM (scalar ipj loops with a column-panel
/// block), kept verbatim as the fixed reference point every report
/// cites: "speedup_vs_baseline" is measured against this.
void baselineGemm(bool transA, bool transB, int m, int n, int k,
                  float alpha, const float* a, int lda, const float* b,
                  int ldb, float beta, float* c, int ldc) {
  constexpr int kJBlock = 256;
  if (beta != 1.0f)
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j) c[i * ldc + j] *= beta;
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;
  if (!transA && !transB) {
    for (int j0 = 0; j0 < n; j0 += kJBlock) {
      const int j1 = std::min(n, j0 + kJBlock);
      for (int i = 0; i < m; ++i) {
        float* crow = c + static_cast<long>(i) * ldc;
        const float* arow = a + static_cast<long>(i) * lda;
        for (int p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<long>(p) * ldb;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else if (transA && !transB) {
    for (int p = 0; p < k; ++p) {
      const float* arow = a + static_cast<long>(p) * lda;
      const float* brow = b + static_cast<long>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<long>(i) * ldc;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!transA && transB) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<long>(i) * lda;
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<long>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
        crow[j] += alpha * acc;
      }
    }
  }
}

struct Shape {
  const char* name;
  int m, n, k;
  bool transA, transB;
};

/// TCAE-shaped problems (encoder conv GEMMs, decoder linear, deconv
/// adjoint — TcaeConfig defaults) and square sweeps.
const Shape kShapes[] = {
    {"tcae_conv1_fwd", 8, 144, 9, false, false},
    {"tcae_conv2_fwd", 16, 36, 72, false, false},
    {"tcae_linear_dec", 64, 576, 96, false, true},
    {"tcae_deconv1_fwd", 128, 144, 16, true, false},
    {"square_64", 64, 64, 64, false, false},
    {"square_128", 128, 128, 128, false, false},
    {"square_256", 256, 256, 256, false, false},
    {"square_512", 512, 512, 512, false, false},
};

volatile float gSink;  // defeats dead-code elimination

/// Best-of-`reps` throughput of `fn` (one invocation = `flops` FLOPs),
/// auto-scaling the inner iteration count so each sample runs >= ~30ms.
template <typename Fn>
double bestGflops(double flops, int reps, Fn&& fn) {
  long iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms >= 30.0 || iters >= (1L << 24)) break;
    iters = ms <= 1.0 ? iters * 16
                      : static_cast<long>(iters * (40.0 / ms)) + 1;
  }
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    best = std::max(best, flops * iters / sec / 1e9);
  }
  return best;
}

struct GemmBuffers {
  std::vector<float> a, b, c;
};

GemmBuffers makeBuffers(const Shape& s, dp::Rng& rng) {
  GemmBuffers buf;
  buf.a.resize(static_cast<std::size_t>(s.m) * s.k);
  buf.b.resize(static_cast<std::size_t>(s.k) * s.n);
  buf.c.resize(static_cast<std::size_t>(s.m) * s.n);
  for (auto& v : buf.a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : buf.b) v = static_cast<float>(rng.uniform(-1, 1));
  return buf;
}

dp::io::Json measureEntry(const Shape& s, int reps, double* scalarOut) {
  dp::Rng rng(2019);
  GemmBuffers buf = makeBuffers(s, rng);
  const int lda = s.transA ? s.m : s.k;
  const int ldb = s.transB ? s.k : s.n;
  const double flops = 2.0 * s.m * s.n * s.k;

  auto entry = dp::io::Json::object();
  entry.set("name", s.name);
  entry.set("m", s.m).set("n", s.n).set("k", s.k);
  entry.set("transA", s.transA).set("transB", s.transB);

  const double base = bestGflops(flops, reps, [&] {
    baselineGemm(s.transA, s.transB, s.m, s.n, s.k, 1.0f, buf.a.data(), lda,
                 buf.b.data(), ldb, 0.0f, buf.c.data(), s.n);
    gSink = buf.c[0];
  });
  entry.set("baseline_gflops", base);

  double scalar = 0.0;
  auto targets = dp::io::Json::object();
  for (const dp::KernelTarget t : dp::nn::supportedKernelTargets()) {
    dp::nn::setGemmKernelTarget(t);
    const double gf = bestGflops(flops, reps, [&] {
      dp::nn::gemm(s.transA, s.transB, s.m, s.n, s.k, 1.0f, buf.a.data(),
                   lda, buf.b.data(), ldb, 0.0f, buf.c.data(), s.n);
      gSink = buf.c[0];
    });
    if (t == dp::KernelTarget::kScalar) scalar = gf;
    auto tj = dp::io::Json::object();
    tj.set("gflops", gf);
    tj.set("speedup_vs_scalar", scalar > 0 ? gf / scalar : 0.0);
    tj.set("speedup_vs_baseline", base > 0 ? gf / base : 0.0);
    targets.set(dp::kernelTargetName(t), std::move(tj));
  }
  entry.set("targets", std::move(targets));
  if (scalarOut) *scalarOut = scalar;
  return entry;
}

/// Direct-vs-im2col conv on the dominant TCAE encoder shape.
dp::io::Json measureConvEntry(int reps) {
  const dp::nn::ConvGeom g{1, 24, 24, 3, 2, 1};
  const int outC = 8;
  dp::Rng rng(7);
  std::vector<float> image(static_cast<std::size_t>(g.height) * g.width);
  std::vector<float> w(static_cast<std::size_t>(outC) * g.colRows());
  std::vector<float> bias(outC);
  std::vector<float> cols(static_cast<std::size_t>(g.colRows()) *
                          g.colCols());
  std::vector<float> y(static_cast<std::size_t>(outC) * g.colCols());
  for (auto& v : image) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1, 1));
  const double flops = 2.0 * outC * g.colCols() * g.colRows();

  const double viaIm2col = bestGflops(flops, reps, [&] {
    dp::nn::im2col(g, image.data(), cols.data());
    dp::nn::gemm(false, false, outC, g.colCols(), g.colRows(), 1.0f,
                 w.data(), g.colRows(), cols.data(), g.colCols(), 0.0f,
                 y.data(), g.colCols());
    gSink = y[0];
  });
  const double direct = bestGflops(flops, reps, [&] {
    dp::nn::convDirect(g, outC, w.data(), bias.data(), image.data(),
                       y.data());
    gSink = y[0];
  });

  auto entry = dp::io::Json::object();
  entry.set("name", "conv_direct_1x24x24_k3s2");
  entry.set("im2col_gemm_gflops", viaIm2col);
  entry.set("direct_gflops", direct);
  entry.set("speedup", viaIm2col > 0 ? direct / viaIm2col : 0.0);
  return entry;
}

/// True when the running CPU can execute the named dispatch target.
/// Unknown names count as "supported" so a typo in the baseline file
/// fails the gate instead of silently skipping.
bool hostSupportsTargetName(const std::string& target) {
  for (const dp::KernelTarget t :
       {dp::KernelTarget::kScalar, dp::KernelTarget::kAvx2,
        dp::KernelTarget::kAvx512})
    if (target == dp::kernelTargetName(t)) return dp::cpuSupports(t);
  return true;
}

/// The --check gate against a parsed baseline. `supported` answers
/// "can this host run the named target" (injectable so --self-test is
/// host-independent). A baseline target absent from the run report is
/// a SKIP only when the host genuinely cannot execute it; when the
/// host can, a missing measurement is a dispatch regression and FAILS
/// — previously it was skipped either way, so a target silently
/// dropped from supportedKernelTargets() passed the gate.
template <typename SupportedFn>
int runCheckParsed(const dp::io::Json& report, const dp::io::Json& baseline,
                   double maxRegress, SupportedFn&& supported) {
  int failures = 0;
  const auto& entries = baseline.at("entries");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& want = entries.at(i);
    const std::string name = want.at("name").asString();
    const std::string target = want.at("target").asString();
    const double wantGf = want.at("gflops").asDouble();
    double gotGf = -1.0;
    bool skipped = false;
    for (std::size_t e = 0; e < report.at("entries").size(); ++e) {
      const auto& got = report.at("entries").at(e);
      if (got.at("name").asString() != name) continue;
      if (!got.at("targets").has(target)) {
        if (supported(target)) {
          std::fprintf(stderr,
                       "FAIL  %s/%s: target supported by this host but "
                       "missing from the run report — dispatch "
                       "regression\n",
                       name.c_str(), target.c_str());
          ++failures;
        } else {
          std::printf("SKIP  %s/%s: target not supported on this host\n",
                      name.c_str(), target.c_str());
        }
        skipped = true;
        break;
      }
      gotGf = got.at("targets").at(target).at("gflops").asDouble();
      break;
    }
    if (skipped) continue;
    if (gotGf < 0.0) {
      std::fprintf(stderr, "FAIL  %s/%s: not measured by this binary\n",
                   name.c_str(), target.c_str());
      ++failures;
      continue;
    }
    const double floor = wantGf * (1.0 - maxRegress);
    const bool ok = gotGf >= floor;
    std::printf("%s  %s/%s: %.2f GFLOP/s (baseline %.2f, floor %.2f)\n",
                ok ? "OK  " : "FAIL", name.c_str(), target.c_str(), gotGf,
                wantGf, floor);
    if (!ok) ++failures;
  }
  if (failures) {
    std::fprintf(stderr, "kernel_bench: %d perf regression(s) > %.0f%%\n",
                 failures, maxRegress * 100.0);
    return 1;
  }
  std::printf("kernel_bench: all baseline entries within %.0f%%\n",
              maxRegress * 100.0);
  return 0;
}

int runCheck(const dp::io::Json& report, const std::string& baselinePath,
             double maxRegress) {
  std::ifstream in(baselinePath);
  if (!in) {
    std::fprintf(stderr, "kernel_bench: cannot open baseline '%s'\n",
                 baselinePath.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const dp::io::Json baseline = dp::io::Json::parse(ss.str());
  return runCheckParsed(report, baseline, maxRegress,
                        hostSupportsTargetName);
}

/// Fixture-style verification of the gate logic itself (no
/// measurement): synthetic report/baseline pairs must produce the
/// expected verdict under injected host-support answers.
int selfTest() {
  const auto makeReport = [](double scalarGf, bool withAvx2,
                             double avx2Gf) {
    auto targets = dp::io::Json::object();
    auto sj = dp::io::Json::object();
    sj.set("gflops", scalarGf);
    targets.set("scalar", std::move(sj));
    if (withAvx2) {
      auto aj = dp::io::Json::object();
      aj.set("gflops", avx2Gf);
      targets.set("avx2", std::move(aj));
    }
    auto entry = dp::io::Json::object();
    entry.set("name", "square_64");
    entry.set("targets", std::move(targets));
    auto entries = dp::io::Json::array();
    entries.push(std::move(entry));
    auto report = dp::io::Json::object();
    report.set("entries", std::move(entries));
    return report;
  };
  const auto makeBaseline = [](double scalarGf, double avx2Gf) {
    auto entries = dp::io::Json::array();
    for (const char* target : {"scalar", "avx2"}) {
      auto e = dp::io::Json::object();
      e.set("name", "square_64");
      e.set("target", target);
      e.set("gflops", target == std::string("scalar") ? scalarGf : avx2Gf);
      entries.push(std::move(e));
    }
    auto baseline = dp::io::Json::object();
    baseline.set("entries", std::move(entries));
    return baseline;
  };
  const auto yes = [](const std::string&) { return true; };
  const auto scalarOnly = [](const std::string& t) { return t == "scalar"; };

  struct Case {
    const char* name;
    int want;
    int got;
  };
  std::vector<Case> cases;
  cases.push_back({"all targets within floor", 0,
                   runCheckParsed(makeReport(10.0, true, 40.0),
                                  makeBaseline(10.0, 40.0), 0.2, yes)});
  cases.push_back({"regression beyond floor fails", 1,
                   runCheckParsed(makeReport(10.0, true, 20.0),
                                  makeBaseline(10.0, 40.0), 0.2, yes)});
  cases.push_back(
      {"missing target on non-supporting host skips", 0,
       runCheckParsed(makeReport(10.0, false, 0.0), makeBaseline(10.0, 40.0),
                      0.2, scalarOnly)});
  cases.push_back(
      {"missing target on supporting host fails", 1,
       runCheckParsed(makeReport(10.0, false, 0.0), makeBaseline(10.0, 40.0),
                      0.2, yes)});
  {
    auto entry = dp::io::Json::object();
    entry.set("name", "no_such_shape");
    entry.set("target", "scalar");
    entry.set("gflops", 1.0);
    auto entries = dp::io::Json::array();
    entries.push(std::move(entry));
    auto baseline = dp::io::Json::object();
    baseline.set("entries", std::move(entries));
    cases.push_back({"baseline shape absent from report fails", 1,
                     runCheckParsed(makeReport(10.0, true, 40.0), baseline,
                                    0.2, yes)});
  }

  int failures = 0;
  for (const Case& c : cases) {
    const bool ok = c.got == c.want;
    std::printf("%s  self-test: %s (want exit %d, got %d)\n",
                ok ? "ok  " : "FAIL", c.name, c.want, c.got);
    if (!ok) ++failures;
  }
  if (failures) {
    std::fprintf(stderr, "kernel_bench --self-test: %d case(s) failed\n",
                 failures);
    return 1;
  }
  std::printf("kernel_bench --self-test: %zu case(s) ok\n", cases.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::string checkPath;
  double maxRegress = 0.2;
  int reps = 3;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kernel_bench: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) jsonPath = need("--json");
    else if (std::strcmp(argv[i], "--self-test") == 0) return selfTest();
    else if (std::strcmp(argv[i], "--check") == 0) checkPath = need("--check");
    else if (std::strcmp(argv[i], "--max-regress") == 0)
      maxRegress = std::stod(need("--max-regress"));
    else if (std::strcmp(argv[i], "--reps") == 0)
      reps = std::stoi(need("--reps"));
    else if (std::strcmp(argv[i], "--threads") == 0)
      threads = std::stoi(need("--threads"));
    else {
      std::fprintf(stderr,
                   "usage: kernel_bench [--json FILE] [--check BASELINE "
                   "[--max-regress R]] [--reps N] [--threads N] "
                   "[--self-test]\n");
      return 2;
    }
  }

  dp::ThreadPool::setGlobalThreads(threads);
  auto report = dp::io::Json::object();
  report.set("threads", threads);
  auto targetNames = dp::io::Json::array();
  for (const dp::KernelTarget t : dp::nn::supportedKernelTargets())
    targetNames.push(dp::kernelTargetName(t));
  report.set("supported_targets", std::move(targetNames));

  auto entries = dp::io::Json::array();
  for (const Shape& s : kShapes) {
    double scalar = 0.0;
    auto entry = measureEntry(s, reps, &scalar);
    std::printf("%-18s", s.name);
    const auto& targets = entry.at("targets");
    std::printf("  baseline %7.2f", entry.at("baseline_gflops").asDouble());
    for (const auto& [tname, tj] : targets.members())
      std::printf("  %s %7.2f (%.2fx)", tname.c_str(),
                  tj.at("gflops").asDouble(),
                  tj.at("speedup_vs_baseline").asDouble());
    std::printf(" GFLOP/s\n");
    entries.push(std::move(entry));
  }
  report.set("entries", std::move(entries));

  auto conv = measureConvEntry(reps);
  std::printf("%-18s  im2col+gemm %7.2f  direct %7.2f (%.2fx) GFLOP/s\n",
              conv.at("name").asString().c_str(),
              conv.at("im2col_gemm_gflops").asDouble(),
              conv.at("direct_gflops").asDouble(),
              conv.at("speedup").asDouble());
  auto convEntries = dp::io::Json::array();
  convEntries.push(std::move(conv));
  report.set("conv_entries", std::move(convEntries));

  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    out << report.dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "kernel_bench: cannot write '%s'\n",
                   jsonPath.c_str());
      return 2;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  if (!checkPath.empty()) return runCheck(report, checkPath, maxRegress);
  return 0;
}
