// google-benchmark micro-benchmarks for the substrates: squish
// extraction/reconstruction throughput, topology canonicalization and
// hashing, DRC checking, Eq. (10) solving with both backends, GEMM and
// TCAE encode/decode throughput. These bound the end-to-end pattern
// generation rate reported by the experiment harnesses.
//
// Thread scaling: the *Threads benchmarks re-run the hot kernels at a
// pool size given by the benchmark argument. `micro_substrates
// --speedup-json [--threads N]` skips google-benchmark entirely and
// prints a serial-vs-N-thread speedup report for GEMM, Conv2d
// forward/backward and massive generation as JSON.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/thread_pool.hpp"
#include "core/flows.hpp"
#include "core/pattern_library.hpp"
#include "nn/conv2d.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"
#include "squish/extract.hpp"
#include "squish/hash.hpp"
#include "squish/reconstruct.hpp"
#include "tensor/gemm.hpp"

namespace {

const dp::DesignRules kRules = dp::euv7nmM2();

std::vector<dp::Clip> sampleClips(int n) {
  dp::Rng rng(99);
  return dp::datagen::generateLibrary(dp::datagen::directprintSpec(1),
                                      kRules, n, rng);
}

void BM_SquishExtract(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::squish::extract(clips[i++ % clips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquishExtract);

void BM_SquishReconstruct(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::SquishPattern> patterns;
  for (const auto& c : clips) patterns.push_back(dp::squish::extract(c));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::reconstruct(patterns[i++ % patterns.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquishReconstruct);

void BM_Canonicalize(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips)
    topos.push_back(dp::squish::padToNetwork(dp::squish::extract(c).topo));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::canonicalize(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Canonicalize);

void BM_HashTopology(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::hashTopology(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTopology);

void BM_TopologyDrc(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(kRules));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.isLegal(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyDrc);

void BM_GeometryDrc(benchmark::State& state) {
  const auto clips = sampleClips(64);
  const dp::drc::GeometryChecker checker(kRules);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.isClean(clips[i++ % clips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeometryDrc);

void BM_GeometrySolver(benchmark::State& state) {
  const auto backend = static_cast<dp::lp::GeometryBackend>(state.range(0));
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips)
    if (!c.empty()) topos.push_back(dp::squish::extract(c).topo);
  const dp::lp::GeometrySolver solver(kRules, backend);
  dp::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(topos[i++ % topos.size()], rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeometrySolver)
    ->Arg(static_cast<int>(dp::lp::GeometryBackend::kDifferenceConstraints))
    ->Arg(static_cast<int>(dp::lp::GeometryBackend::kSimplexRandomVertex));

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  dp::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    dp::nn::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n) *
                          n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TcaeEncodeDecode(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  dp::Rng rng(5);
  dp::models::TcaeConfig cfg;
  dp::models::Tcae tcae(cfg, rng);
  const auto clips = sampleClips(batch);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  topos.resize(static_cast<std::size_t>(batch),
               dp::squish::Topology(1, 1));
  const auto x = dp::models::encodeTopologies(topos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcae.reconstruct(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TcaeEncodeDecode)->Arg(1)->Arg(32)->Arg(128);

// --- Thread-scaling benchmarks -------------------------------------
// Each takes the pool size as the benchmark argument so `--speedup`
// comparisons across thread counts come from one binary.

void BM_GemmThreads(benchmark::State& state) {
  dp::ThreadPool::setGlobalThreads(static_cast<int>(state.range(0)));
  const int n = 256;
  dp::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    dp::nn::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
  dp::ThreadPool::setGlobalThreads(dp::ThreadPool::defaultThreads());
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dForwardThreads(benchmark::State& state) {
  dp::ThreadPool::setGlobalThreads(static_cast<int>(state.range(0)));
  dp::Rng rng(2);
  dp::nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  dp::nn::Tensor x({64, 8, 24, 24});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, /*training=*/true));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  dp::ThreadPool::setGlobalThreads(dp::ThreadPool::defaultThreads());
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dBackwardThreads(benchmark::State& state) {
  dp::ThreadPool::setGlobalThreads(static_cast<int>(state.range(0)));
  dp::Rng rng(2);
  dp::nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  dp::nn::Tensor x({64, 8, 24, 24});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  const dp::nn::Tensor y = conv.forward(x, /*training=*/true);
  dp::nn::Tensor dy(y.shape());
  for (std::size_t i = 0; i < dy.numel(); ++i)
    dy.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(dy));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  dp::ThreadPool::setGlobalThreads(dp::ThreadPool::defaultThreads());
}
BENCHMARK(BM_Conv2dBackwardThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_GenerationThreads(benchmark::State& state) {
  dp::ThreadPool::setGlobalThreads(static_cast<int>(state.range(0)));
  dp::Rng rng(7);
  dp::models::Tcae tcae(dp::models::TcaeConfig{}, rng);
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(kRules));
  const int batch = 128;
  dp::nn::Tensor latents({batch, tcae.config().latentDim});
  for (std::size_t i = 0; i < latents.numel(); ++i)
    latents.data()[i] = static_cast<float>(rng.uniform(-2, 2));
  for (auto _ : state) {
    dp::core::GenerationResult result;
    dp::core::accountActivationBatch(tcae.decode(latents), checker,
                                     result);
    benchmark::DoNotOptimize(result.generated);
  }
  state.SetItemsProcessed(state.iterations() * batch);
  dp::ThreadPool::setGlobalThreads(dp::ThreadPool::defaultThreads());
}
BENCHMARK(BM_GenerationThreads)->Arg(1)->Arg(2)->Arg(4);

// --- Serial-vs-parallel speedup report (JSON) ----------------------

/// Best-of-`reps` wall time of `fn()` in milliseconds.
template <typename Fn>
double bestMs(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct SpeedupRow {
  const char* name;
  double serialMs;
  double parallelMs;
};

/// Times `fn` at 1 thread and at `threads` threads.
template <typename Fn>
SpeedupRow measure(const char* name, int threads, Fn&& fn) {
  dp::ThreadPool::setGlobalThreads(1);
  const double serial = bestMs(fn);
  dp::ThreadPool::setGlobalThreads(threads);
  const double parallel = bestMs(fn);
  return {name, serial, parallel};
}

int runSpeedupJson(int threads) {
  dp::Rng rng(11);

  const int n = 256;
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));

  dp::nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  dp::nn::Tensor x({64, 8, 24, 24});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  dp::nn::Tensor dy = conv.forward(x, /*training=*/true);
  for (std::size_t i = 0; i < dy.numel(); ++i)
    dy.data()[i] = static_cast<float>(rng.uniform(-1, 1));

  dp::models::Tcae tcae(dp::models::TcaeConfig{}, rng);
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(kRules));
  dp::nn::Tensor latents({256, tcae.config().latentDim});
  for (std::size_t i = 0; i < latents.numel(); ++i)
    latents.data()[i] = static_cast<float>(rng.uniform(-2, 2));

  const SpeedupRow rows[] = {
      measure("gemm_256", threads,
              [&] {
                for (int r = 0; r < 8; ++r)
                  dp::nn::gemm(false, false, n, n, n, 1.0f, a.data(), n,
                               b.data(), n, 0.0f, c.data(), n);
              }),
      measure("conv2d_forward_b64", threads,
              [&] {
                for (int r = 0; r < 8; ++r)
                  benchmark::DoNotOptimize(conv.forward(x, true));
              }),
      measure("conv2d_backward_b64", threads,
              [&] {
                for (int r = 0; r < 8; ++r)
                  benchmark::DoNotOptimize(conv.backward(dy));
              }),
      measure("generation_decode_legal_b256", threads,
              [&] {
                dp::core::GenerationResult result;
                dp::core::accountActivationBatch(tcae.decode(latents),
                                                 checker, result);
                benchmark::DoNotOptimize(result.generated);
              }),
  };

  std::printf("{\n  \"threads\": %d,\n  \"benchmarks\": [\n", threads);
  const std::size_t count = sizeof(rows) / sizeof(rows[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const SpeedupRow& r = rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"serial_ms\": %.3f, "
        "\"parallel_ms\": %.3f, \"speedup\": %.3f}%s\n",
        r.name, r.serialMs, r.parallelMs,
        r.parallelMs > 0 ? r.serialMs / r.parallelMs : 0.0,
        i + 1 < count ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool speedup = false;
  int threads = dp::ThreadPool::defaultThreads();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup-json") == 0) speedup = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      try {
        threads = std::stoi(argv[i + 1]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: --threads expects an integer, got '%s'\n",
                     argv[i + 1]);
        return 2;
      }
    }
  }
  if (speedup) return runSpeedupJson(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
