// google-benchmark micro-benchmarks for the substrates: squish
// extraction/reconstruction throughput, topology canonicalization and
// hashing, DRC checking, Eq. (10) solving with both backends, GEMM and
// TCAE encode/decode throughput. These bound the end-to-end pattern
// generation rate reported by the experiment harnesses.

#include <benchmark/benchmark.h>

#include "core/pattern_library.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"
#include "squish/extract.hpp"
#include "squish/hash.hpp"
#include "squish/reconstruct.hpp"
#include "tensor/gemm.hpp"

namespace {

const dp::DesignRules kRules = dp::euv7nmM2();

std::vector<dp::Clip> sampleClips(int n) {
  dp::Rng rng(99);
  return dp::datagen::generateLibrary(dp::datagen::directprintSpec(1),
                                      kRules, n, rng);
}

void BM_SquishExtract(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::squish::extract(clips[i++ % clips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquishExtract);

void BM_SquishReconstruct(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::SquishPattern> patterns;
  for (const auto& c : clips) patterns.push_back(dp::squish::extract(c));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::reconstruct(patterns[i++ % patterns.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquishReconstruct);

void BM_Canonicalize(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips)
    topos.push_back(dp::squish::padToNetwork(dp::squish::extract(c).topo));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::canonicalize(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Canonicalize);

void BM_HashTopology(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::squish::hashTopology(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTopology);

void BM_TopologyDrc(benchmark::State& state) {
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(kRules));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.isLegal(topos[i++ % topos.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyDrc);

void BM_GeometryDrc(benchmark::State& state) {
  const auto clips = sampleClips(64);
  const dp::drc::GeometryChecker checker(kRules);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.isClean(clips[i++ % clips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeometryDrc);

void BM_GeometrySolver(benchmark::State& state) {
  const auto backend = static_cast<dp::lp::GeometryBackend>(state.range(0));
  const auto clips = sampleClips(64);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips)
    if (!c.empty()) topos.push_back(dp::squish::extract(c).topo);
  const dp::lp::GeometrySolver solver(kRules, backend);
  dp::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(topos[i++ % topos.size()], rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeometrySolver)
    ->Arg(static_cast<int>(dp::lp::GeometryBackend::kDifferenceConstraints))
    ->Arg(static_cast<int>(dp::lp::GeometryBackend::kSimplexRandomVertex));

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  dp::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    dp::nn::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long>(n) *
                          n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TcaeEncodeDecode(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  dp::Rng rng(5);
  dp::models::TcaeConfig cfg;
  dp::models::Tcae tcae(cfg, rng);
  const auto clips = sampleClips(batch);
  std::vector<dp::squish::Topology> topos;
  for (const auto& c : clips) topos.push_back(dp::squish::extract(c).topo);
  topos.resize(static_cast<std::size_t>(batch),
               dp::squish::Topology(1, 1));
  const auto x = dp::models::encodeTopologies(topos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcae.reconstruct(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TcaeEncodeDecode)->Arg(1)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
