// Reproduces paper Fig. 10: (cx, cy) complexity heatmaps (log-scaled
// counts) of five libraries — (a) existing designs, (b) industry tool,
// (c) DCGAN, (d) TCAE-Combine, (e) TCAE-Random — each annotated with
// its diversity H.
//
// Expected shape: the existing designs and the industry tool concentrate
// in a few cells; TCAE-Random fills a much wider region (paper: H=3.337
// vs 1.642 for the industry tool).

#include <iostream>

#include "bench_common.hpp"
#include "core/perturb.hpp"
#include "io/heatmap.hpp"
#include "models/gan.hpp"
#include "models/topology_codec.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"

namespace {

void show(const std::string& title, const dp::core::GenerationResult& r) {
  std::cout << title << "  (unique = " << r.unique.size()
            << ", H = " << r.unique.diversity() << ")\n";
  if (!r.unique.empty())
    std::cout << dp::io::renderHeatmap(r.unique.histogram());
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  dp::bench::printHeader(
      "Fig. 10 — complexity distributions of layout libraries",
      scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);

  show("(a) Existing layout pattern dataset",
       dp::core::libraryResult(data.topologies, checker));

  {
    dp::core::GenerationResult r;
    const auto spec = dp::datagen::industryToolSpec();
    for (long i = 0; i < scale.count; ++i) {
      const auto clip = dp::datagen::generateClip(spec, rules, rng);
      ++r.generated;
      if (clip.empty()) continue;
      ++r.legal;
      r.unique.add(dp::squish::unpad(dp::squish::extract(clip).topo));
    }
    show("(b) Industrial layout generator", r);
  }

  {
    dp::models::Gan dcgan = dp::models::makeDcgan(rng);
    dp::models::GanConfig gcfg;
    gcfg.trainSteps = scale.ganSteps;
    dcgan.train(dp::models::encodeTopologies(data.topologies), gcfg, rng);
    const auto sampler = [&dcgan](int n, dp::Rng& r) {
      return dcgan.sample(n, r);
    };
    show("(c) DCGAN",
         dp::core::evaluateSampler(sampler, checker, scale.count, 256,
                                   rng));
  }

  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);
  {
    dp::core::CombineConfig ccfg;
    ccfg.count = scale.count;
    show("(d) TCAE-Combine",
         dp::core::tcaeCombine(tcae, data.topologies, checker, ccfg, rng));
  }
  {
    const auto sens =
        dp::bench::sensitivities(tcae, data.topologies, checker);
    const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);
    dp::core::FlowConfig fcfg;
    fcfg.count = scale.count;
    show("(e) TCAE-Random",
         dp::core::tcaeRandom(tcae, data.topologies, perturber, checker,
                              fcfg, rng));
  }
  std::cout << "Expected shape (paper Fig. 10): (e) covers the widest "
               "(cx, cy) region;\n(b) stays weakly distributed.\n";
  return 0;
}
