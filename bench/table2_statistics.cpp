// Reproduces paper Table II: statistics of generated pattern libraries
// on one benchmark group — unique DRC-clean pattern count and pattern
// diversity H for:
//   Existing Design, Industry Tool (Monte-Carlo surrogate), DCGAN, VAE,
//   TCAE-Combine, TCAE-Random.
//
// Expected shape (paper): TCAE-Random dominates (~30% of its samples
// unique DRC-clean, highest H); TCAE-Combine yields <2k unique; DCGAN
// and VAE yield few valid patterns; the industry tool is weakly
// distributed (H ~ 1.6 vs ~2.9 for existing designs).

#include <iostream>

#include "bench_common.hpp"
#include "core/perturb.hpp"
#include "io/table.hpp"
#include "models/gan.hpp"
#include "models/topology_codec.hpp"
#include "models/vae.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  dp::bench::printHeader("Table II — statistics of generated patterns",
                         scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);

  dp::io::Table table(
      {"Method", "Samples", "Pattern #", "Diversity H", "Legal %"});
  auto addRow = [&](const std::string& name,
                    const dp::core::GenerationResult& r) {
    table.addRow({name, std::to_string(r.generated),
                  std::to_string(r.unique.size()),
                  dp::io::Table::num(r.unique.diversity()),
                  dp::io::Table::num(100.0 * r.legalFraction(), 1)});
    std::cout << "  [" << name << "] done: " << r.unique.size()
              << " unique, H=" << dp::io::Table::num(r.unique.diversity())
              << "\n";
  };

  // Existing design.
  addRow("Existing Design",
         dp::core::libraryResult(data.topologies, checker));

  // Industry tool at the same generation budget.
  {
    dp::core::GenerationResult r;
    const auto spec = dp::datagen::industryToolSpec();
    for (long i = 0; i < scale.count; ++i) {
      const auto clip = dp::datagen::generateClip(spec, rules, rng);
      ++r.generated;
      if (clip.empty()) continue;
      ++r.legal;
      r.unique.add(dp::squish::unpad(dp::squish::extract(clip).topo));
    }
    addRow("Industry Tool", r);
  }

  // DCGAN trained directly on topologies.
  {
    dp::models::Gan dcgan = dp::models::makeDcgan(rng);
    dp::models::GanConfig gcfg;
    gcfg.trainSteps = scale.ganSteps;
    dcgan.train(dp::models::encodeTopologies(data.topologies), gcfg, rng);
    const auto sampler = [&dcgan](int n, dp::Rng& r) {
      return dcgan.sample(n, r);
    };
    addRow("DCGAN",
           dp::core::evaluateSampler(sampler, checker, scale.count, 256,
                                     rng));
  }

  // VAE trained directly on topologies, sampled from the prior.
  {
    dp::models::VaeConfig vcfg;
    vcfg.backbone = dp::models::VaeConfig::Backbone::kTopology;
    vcfg.trainSteps = scale.ganSteps;
    dp::models::Vae vae(vcfg, rng);
    vae.train(dp::models::encodeTopologies(data.topologies), rng);
    const auto sampler = [&vae](int n, dp::Rng& r) {
      return vae.sample(n, r);
    };
    addRow("VAE",
           dp::core::evaluateSampler(sampler, checker, scale.count, 256,
                                     rng));
  }

  // TCAE flows share one trained model.
  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);

  {
    dp::core::CombineConfig ccfg;
    ccfg.count = scale.count;
    ccfg.poolSize = 10;  // paper: combinations of 10 clip features
    addRow("TCAE-Combine",
           dp::core::tcaeCombine(tcae, data.topologies, checker, ccfg,
                                 rng));
  }
  {
    const auto sens =
        dp::bench::sensitivities(tcae, data.topologies, checker);
    const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);
    dp::core::FlowConfig fcfg;
    fcfg.count = scale.count;
    fcfg.sourcePoolSize = 1000;  // paper: perturb 1000 existing patterns
    addRow("TCAE-Random",
           dp::core::tcaeRandom(tcae, data.topologies, perturber, checker,
                                fcfg, rng));
  }

  std::cout << "\n" << table.toString();
  std::cout << "\nExpected shape (paper Table II): TCAE-Random >> "
               "TCAE-Combine > {DCGAN, VAE};\nTCAE-Random H well above "
               "the industry tool's.\n";
  return 0;
}
