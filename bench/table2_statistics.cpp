// Reproduces paper Table II: statistics of generated pattern libraries
// on one benchmark group — unique DRC-clean pattern count and pattern
// diversity H for:
//   Existing Design, Industry Tool (Monte-Carlo surrogate), DCGAN, VAE,
//   TCAE-Combine, TCAE-Random.
//
// Expected shape (paper): TCAE-Random dominates (~30% of its samples
// unique DRC-clean, highest H); TCAE-Combine yields <2k unique; DCGAN
// and VAE yield few valid patterns; the industry tool is weakly
// distributed (H ~ 1.6 vs ~2.9 for existing designs).

#include <iostream>

#include "bench_common.hpp"
#include "common/atomic_file.hpp"
#include "core/perturb.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "models/gan.hpp"
#include "models/topology_codec.hpp"
#include "models/vae.hpp"
#include "pipeline/massive.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"

namespace {

/// Paper-scale massive mode (--resume <dir>): instead of the six-method
/// comparison, run (or resume) the streaming TCAE-Random pipeline of
/// DESIGN.md §12 against an on-disk pattern store. Kill it at any
/// point; rerunning with the same arguments continues from the last
/// committed checkpoint and lands on the byte-identical final store.
int runMassiveMode(const dp::bench::Args& args,
                   const dp::bench::Scale& scale) {
  const std::string dir = args.getString("resume");
  if (dir.empty()) {
    std::cerr << "--resume needs a store directory\n";
    return 1;
  }
  dp::pipeline::MassiveConfig config;
  config.dir = dir;
  config.count = scale.count;
  config.batchSize = static_cast<int>(args.getLong("batch", 256));
  config.checkpointEvery = args.getLong("checkpoint-every", 65536);
  config.patternsPerSegment = args.getLong("segment-patterns", 65536);
  config.seed = scale.seed;

  auto params = scale.describe();
  params.emplace_back("resume", dir);
  params.emplace_back("batch", std::to_string(config.batchSize));
  params.emplace_back("checkpoint-every",
                      std::to_string(config.checkpointEvery));
  dp::bench::printHeader(
      "Table II at paper scale — resumable massive generation", params);

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);

  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng,
                                   scale.lr);
  const auto sens =
      dp::bench::sensitivities(tcae, data.topologies, checker);
  const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);
  const dp::nn::Tensor sourceLatents =
      dp::core::encodeSourceLatents(tcae, data.topologies, 1000);

  std::cout << "  [massive] store: " << dir << "\n";
  const dp::pipeline::MassiveResult r = dp::pipeline::runMassive(
      tcae, sourceLatents, perturber, checker, config);

  if (r.resumed)
    std::cout << "  [massive] resumed from committed cursor "
              << r.resumedFrom << "\n";
  std::cout << "  [massive] samples:   " << r.generated << "\n";
  std::cout << "  [massive] legal:     " << r.legal << " ("
            << dp::io::Table::num(100.0 * r.legalFraction(), 1) << "%)\n";
  std::cout << "  [massive] unique:    " << r.unique << "\n";
  std::cout << "  [massive] diversity: "
            << dp::io::Table::num(r.diversity) << "\n\n";

  dp::io::Table stageTable({"Stage", "Items", "Seconds", "Items/s"});
  for (const auto& [stage, stats] : r.stages) {
    const double rate =
        stats.seconds > 0 ? static_cast<double>(stats.items) / stats.seconds
                          : 0.0;
    stageTable.addRow({stage, std::to_string(stats.items),
                       dp::io::Table::num(stats.seconds),
                       dp::io::Table::num(rate, 1)});
  }
  std::cout << stageTable.toString();

  if (args.has("stats-json")) {
    dp::io::Json j = dp::io::Json::object();
    j.set("count", r.generated);
    j.set("legal", r.legal);
    j.set("unique", static_cast<double>(r.unique));
    j.set("diversity", r.diversity);
    j.set("legalFraction", r.legalFraction());
    j.set("resumed", r.resumed);
    j.set("resumedFrom", r.resumedFrom);
    dp::io::Json stages = dp::io::Json::object();
    for (const auto& [stage, stats] : r.stages) {
      dp::io::Json s = dp::io::Json::object();
      s.set("items", static_cast<double>(stats.items));
      s.set("seconds", stats.seconds);
      stages.set(stage, std::move(s));
    }
    j.set("stages", std::move(stages));
    dp::AtomicFileWriter out(args.getString("stats-json"));
    out.append(j.dump());
    out.append("\n");
    (void)out.commit();
    std::cout << "\n  stats written to " << args.getString("stats-json")
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  if (args.has("resume")) return runMassiveMode(args, scale);
  dp::bench::printHeader("Table II — statistics of generated patterns",
                         scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);

  dp::io::Table table(
      {"Method", "Samples", "Pattern #", "Diversity H", "Legal %"});
  auto addRow = [&](const std::string& name,
                    const dp::core::GenerationResult& r) {
    table.addRow({name, std::to_string(r.generated),
                  std::to_string(r.unique.size()),
                  dp::io::Table::num(r.unique.diversity()),
                  dp::io::Table::num(100.0 * r.legalFraction(), 1)});
    std::cout << "  [" << name << "] done: " << r.unique.size()
              << " unique, H=" << dp::io::Table::num(r.unique.diversity())
              << "\n";
  };

  // Existing design.
  addRow("Existing Design",
         dp::core::libraryResult(data.topologies, checker));

  // Industry tool at the same generation budget.
  {
    dp::core::GenerationResult r;
    const auto spec = dp::datagen::industryToolSpec();
    for (long i = 0; i < scale.count; ++i) {
      const auto clip = dp::datagen::generateClip(spec, rules, rng);
      ++r.generated;
      if (clip.empty()) continue;
      ++r.legal;
      r.unique.add(dp::squish::unpad(dp::squish::extract(clip).topo));
    }
    addRow("Industry Tool", r);
  }

  // DCGAN trained directly on topologies.
  {
    dp::models::Gan dcgan = dp::models::makeDcgan(rng);
    dp::models::GanConfig gcfg;
    gcfg.trainSteps = scale.ganSteps;
    dcgan.train(dp::models::encodeTopologies(data.topologies), gcfg, rng);
    const auto sampler = [&dcgan](int n, dp::Rng& r) {
      return dcgan.sample(n, r);
    };
    addRow("DCGAN",
           dp::core::evaluateSampler(sampler, checker, scale.count, 256,
                                     rng));
  }

  // VAE trained directly on topologies, sampled from the prior.
  {
    dp::models::VaeConfig vcfg;
    vcfg.backbone = dp::models::VaeConfig::Backbone::kTopology;
    vcfg.trainSteps = scale.ganSteps;
    dp::models::Vae vae(vcfg, rng);
    vae.train(dp::models::encodeTopologies(data.topologies), rng);
    const auto sampler = [&vae](int n, dp::Rng& r) {
      return vae.sample(n, r);
    };
    addRow("VAE",
           dp::core::evaluateSampler(sampler, checker, scale.count, 256,
                                     rng));
  }

  // TCAE flows share one trained model.
  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);

  {
    dp::core::CombineConfig ccfg;
    ccfg.count = scale.count;
    ccfg.poolSize = 10;  // paper: combinations of 10 clip features
    addRow("TCAE-Combine",
           dp::core::tcaeCombine(tcae, data.topologies, checker, ccfg,
                                 rng));
  }
  {
    const auto sens =
        dp::bench::sensitivities(tcae, data.topologies, checker);
    const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);
    dp::core::FlowConfig fcfg;
    fcfg.count = scale.count;
    fcfg.sourcePoolSize = 1000;  // paper: perturb 1000 existing patterns
    addRow("TCAE-Random",
           dp::core::tcaeRandom(tcae, data.topologies, perturber, checker,
                                fcfg, rng));
  }

  std::cout << "\n" << table.toString();
  std::cout << "\nExpected shape (paper Table II): TCAE-Random >> "
               "TCAE-Combine > {DCGAN, VAE};\nTCAE-Random H well above "
               "the industry tool's.\n";
  return 0;
}
