// Fused-decode benchmark: per-pattern decode + assess cost of the
// unfused float path (Tcae::decode + accountActivationBatch) against
// the fused bit-packed route (FusedDecodeRoute::decodeMasks +
// accountMaskBatch, DESIGN.md §14) at every dispatch target.
//
//   decode_bench [--json FILE] [--reps N] [--samples N] [--threads N]
//   decode_bench --check bench/baselines/decode.json [--min-speedup S]
//
// --json writes the machine-readable report (BENCH_decode.json in CI,
// uploaded as an artifact). --check measures both paths IN THE SAME
// RUN and gates on the fused/unfused ratio at the baseline's named
// target, so the gate is immune to absolute host-speed drift: it
// fails only when the fused route loses its architectural advantage,
// not when the whole machine is slow. The baseline's recorded
// microsecond figures are reference context, not the gate.
// Measurements default to a single thread so ratios reflect the
// kernels, not the host's core count.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/flows.hpp"
#include "core/fused_generate.hpp"
#include "drc/topology_rules.hpp"
#include "io/json.hpp"
#include "models/tcae.hpp"
#include "tensor/gemm.hpp"

namespace {

volatile std::uint32_t gSink;  // defeats dead-code elimination

/// Best-of-`reps` per-sample latency (µs) of `fn` (one invocation =
/// `samples` patterns), auto-scaling the inner iteration count so each
/// timed block runs >= ~60ms.
template <typename Fn>
double bestMicros(int samples, int reps, Fn&& fn) {
  long iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms >= 60.0 || iters >= (1L << 20)) break;
    iters = ms <= 1.0 ? iters * 16
                      : static_cast<long>(iters * (80.0 / ms)) + 1;
  }
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, us / static_cast<double>(iters) / samples);
  }
  return best;
}

struct Fixture {
  dp::models::Tcae tcae;
  dp::core::FusedDecodeRoute route;
  dp::drc::TopologyChecker checker;
  dp::nn::Tensor latents;
  int samples;
};

Fixture makeFixture(int samples) {
  dp::Rng rng(2019);
  dp::models::TcaeConfig config;  // paper-default decoder stack
  dp::models::Tcae tcae(config, rng);
  dp::core::FusedDecodeRoute route(tcae);
  dp::nn::Tensor latents({samples, config.latentDim});
  for (std::size_t i = 0; i < latents.numel(); ++i)
    latents[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  return Fixture{std::move(tcae), std::move(route),
                 dp::drc::TopologyChecker(), std::move(latents), samples};
}

/// One dispatch target: unfused decode-only, unfused decode+assess and
/// fused decode+assess per-sample µs, plus the same-run speedups.
dp::io::Json measureTarget(Fixture& fx, int reps) {
  auto entry = dp::io::Json::object();

  const double unfusedDecode = bestMicros(fx.samples, reps, [&] {
    const dp::nn::Tensor activations = fx.tcae.decode(fx.latents);
    gSink = static_cast<std::uint32_t>(activations[0] > 0.5f);
  });
  const double unfusedTotal = bestMicros(fx.samples, reps, [&] {
    dp::core::GenerationResult result;
    dp::core::accountActivationBatch(fx.tcae.decode(fx.latents), fx.checker,
                                     result);
    gSink = static_cast<std::uint32_t>(result.legal);
  });
  std::vector<std::uint32_t> masks;
  const double fusedDecode = bestMicros(fx.samples, reps, [&] {
    fx.route.decodeMasks(fx.latents, masks);
    gSink = masks[0];
  });
  const double fusedTotal = bestMicros(fx.samples, reps, [&] {
    fx.route.decodeMasks(fx.latents, masks);
    dp::core::GenerationResult result;
    dp::core::accountMaskBatch(masks.data(), fx.samples,
                               fx.route.topologySize(), fx.checker, result);
    gSink = static_cast<std::uint32_t>(result.legal);
  });

  entry.set("unfused_decode_us", unfusedDecode);
  entry.set("unfused_total_us", unfusedTotal);
  entry.set("fused_decode_us", fusedDecode);
  entry.set("fused_total_us", fusedTotal);
  entry.set("decode_speedup",
            fusedDecode > 0 ? unfusedDecode / fusedDecode : 0.0);
  entry.set("total_speedup",
            fusedTotal > 0 ? unfusedTotal / fusedTotal : 0.0);
  return entry;
}

bool hostSupportsTargetName(const std::string& target) {
  for (const dp::KernelTarget t :
       {dp::KernelTarget::kScalar, dp::KernelTarget::kAvx2,
        dp::KernelTarget::kAvx512})
    if (target == dp::kernelTargetName(t)) return dp::cpuSupports(t);
  return true;  // unknown names fail the gate rather than skip
}

/// The CI perf gate: the same-run decode+assess speedup at the
/// baseline's named target must reach `minSpeedup` (the baseline's
/// own min_speedup unless --min-speedup overrides it). A named target
/// the host cannot execute is a SKIP; a supported-but-unmeasured
/// target is a dispatch regression and fails.
int runCheck(const dp::io::Json& report, const std::string& baselinePath,
             double minSpeedupOverride) {
  std::ifstream in(baselinePath);
  if (!in) {
    std::fprintf(stderr, "decode_bench: cannot open baseline '%s'\n",
                 baselinePath.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const dp::io::Json baseline = dp::io::Json::parse(ss.str());

  int failures = 0;
  int checked = 0;
  const auto& gates = baseline.at("gates");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto& gate = gates.at(i);
    const std::string target = gate.at("target").asString();
    const double minSpeedup = minSpeedupOverride > 0
                                  ? minSpeedupOverride
                                  : gate.at("min_speedup").asDouble();
    if (!report.at("targets").has(target)) {
      if (hostSupportsTargetName(target)) {
        std::fprintf(stderr,
                     "FAIL  %s: target supported by this host but missing "
                     "from the run report — dispatch regression\n",
                     target.c_str());
        ++failures;
      } else {
        std::printf("SKIP  %s: target not supported on this host\n",
                    target.c_str());
      }
      continue;
    }
    ++checked;
    const auto& got = report.at("targets").at(target);
    const double speedup = got.at("total_speedup").asDouble();
    const bool ok = speedup >= minSpeedup;
    std::printf(
        "%s  %s: fused %.2f µs vs unfused %.2f µs per pattern — "
        "%.2fx (gate %.2fx)\n",
        ok ? "OK  " : "FAIL", target.c_str(),
        got.at("fused_total_us").asDouble(),
        got.at("unfused_total_us").asDouble(), speedup, minSpeedup);
    if (!ok) ++failures;
  }
  if (failures) {
    std::fprintf(stderr, "decode_bench: %d gate failure(s)\n", failures);
    return 1;
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "decode_bench: no baseline gate was checkable on this "
                 "host\n");
    return 1;
  }
  std::printf("decode_bench: %d gate(s) passed\n", checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::string checkPath;
  double minSpeedup = 0.0;  // 0 = use the baseline's recorded gate
  int reps = 3;
  int samples = 256;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "decode_bench: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) jsonPath = need("--json");
    else if (std::strcmp(argv[i], "--check") == 0) checkPath = need("--check");
    else if (std::strcmp(argv[i], "--min-speedup") == 0)
      minSpeedup = std::stod(need("--min-speedup"));
    else if (std::strcmp(argv[i], "--reps") == 0)
      reps = std::stoi(need("--reps"));
    else if (std::strcmp(argv[i], "--samples") == 0)
      samples = std::stoi(need("--samples"));
    else if (std::strcmp(argv[i], "--threads") == 0)
      threads = std::stoi(need("--threads"));
    else {
      std::fprintf(stderr,
                   "usage: decode_bench [--json FILE] [--check BASELINE "
                   "[--min-speedup S]] [--reps N] [--samples N] "
                   "[--threads N]\n");
      return 2;
    }
  }

  dp::ThreadPool::setGlobalThreads(threads);
  Fixture fx = makeFixture(samples);

  auto report = dp::io::Json::object();
  report.set("threads", threads);
  report.set("samples", samples);
  auto targets = dp::io::Json::object();
  for (const dp::KernelTarget t : dp::nn::supportedKernelTargets()) {
    dp::nn::setGemmKernelTarget(t);
    auto entry = measureTarget(fx, reps);
    std::printf(
        "%-7s unfused %7.2f µs (decode %7.2f)  fused %6.2f µs "
        "(decode %6.2f)  %5.2fx decode+assess\n",
        dp::kernelTargetName(t), entry.at("unfused_total_us").asDouble(),
        entry.at("unfused_decode_us").asDouble(),
        entry.at("fused_total_us").asDouble(),
        entry.at("fused_decode_us").asDouble(),
        entry.at("total_speedup").asDouble());
    targets.set(dp::kernelTargetName(t), std::move(entry));
  }
  report.set("targets", std::move(targets));

  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    out << report.dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "decode_bench: cannot write '%s'\n",
                   jsonPath.c_str());
      return 2;
    }
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  if (!checkPath.empty()) return runCheck(report, checkPath, minSpeedup);
  return 0;
}
