// serve_load — load generator for the pattern-generation service, in
// closed-loop (think time zero) or open-loop (fixed arrival rate)
// form, over persistent keep-alive connections. Drives either an
// in-process server or a full shared-nothing deployment (N forked
// workers behind the consistent-hash load balancer, src/serve/lb.hpp)
// and cross-checks the server's /metrics counters against the
// clients' own totals (a mismatch exits non-zero, so CI can run this
// as a smoke test).
//
//   serve_load --clients 8 --requests 4 --count 64 --steps 300
//              --clips 60 [--latency-json out.json]
//   serve_load --rate 200 ...            open loop: arrivals scheduled
//              at an aggregate fixed rate; latency is measured from
//              the SCHEDULED arrival, so queueing delay is visible
//   serve_load --workers 4 ...           deployment mode: forks 4
//              serve workers behind the LB, trains one bundle and
//              clones it under 4 names (consistent-hash routing gets
//              distinct keys), and verifies a sample of responses
//              bit-identical to in-process generation
//   serve_load --workers 4 --connections 10000
//              additionally opens and HOLDS N concurrent keep-alive
//              connections, verifies the server's dp_connections_open
//              gauge sees them, and sweeps a sample with a second
//              request each to prove they stayed usable
//   serve_load --workers 4 --kill-worker 1 ...
//              chaos: SIGKILLs a worker mid-run; every client request
//              must still succeed (the LB retries the in-flight
//              request on another worker) and the worker must come
//              back respawned under the same id
//   serve_load ... --check bench/baselines/serve.json
//              tail-latency perf gate: compares the measured p99s and
//              held-connection count against checked-in ceilings
//
// Chaos mode: when DP_FAULTS is set in the environment (see
// src/common/fault.hpp) the injected faults make individual exchanges
// fail by design, so clients additionally retry dropped connections
// (status 0) and sheds (503), and the exact client-vs-server counter
// cross-checks relax to inequalities — a send-side fault can lose a
// response the server already counted as a 200.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/sync.hpp"
#include "io/json.hpp"
#include "serve/lb.hpp"
#include "serve/server.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct HttpReply {
  int status = 0;
  std::string body;
  bool complete = false;  // body length matches the Content-Length header
};

struct ClientStats {
  std::atomic<long> ok{0};
  std::atomic<long> retried{0};
  std::atomic<long> errors{0};
  std::atomic<long> generatedTotal{0};
  std::atomic<long> connectsOpened{0};
  std::atomic<long> reusedRequests{0};  // completed on an already-used conn
};

/// A persistent HTTP/1.1 keep-alive client connection. call() reuses
/// the connection across requests (Content-Length framing, no
/// read-to-EOF); a failed exchange on a REUSED connection is retried
/// once on a fresh one — the server may have closed the idle
/// connection just as the request went out, which is the standard
/// keep-alive race, not an error.
class KeepAliveClient {
 public:
  KeepAliveClient(int port, ClientStats* stats)
      : port_(port), stats_(stats) {}
  ~KeepAliveClient() { closeConn(); }

  KeepAliveClient(const KeepAliveClient&) = delete;
  KeepAliveClient& operator=(const KeepAliveClient&) = delete;

  HttpReply call(const std::string& method, const std::string& path,
                 const std::string& body) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const bool fresh = fd_ < 0;
      if (fd_ < 0 && !open()) return {};
      const bool reused = usedOnce_;
      HttpReply reply;
      bool close = false;
      if (sendRequest(method, path, body) && readReply(&reply, &close)) {
        usedOnce_ = true;
        if (reused && stats_) ++stats_->reusedRequests;
        if (close) closeConn();
        return reply;
      }
      closeConn();
      // A fresh connection failing is a real failure; a reused one
      // gets the one keep-alive-race retry.
      if (fresh) return reply.status != 0 ? reply : HttpReply{};
    }
    return {};
  }

  void closeConn() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    usedOnce_ = false;
    inbuf_.clear();
  }

 private:
  bool open() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (stats_) ++stats_->connectsOpened;
    return true;
  }

  bool sendRequest(const std::string& method, const std::string& path,
                   const std::string& body) {
    std::string req = method + " " + path + " HTTP/1.1\r\n";
    req += "Host: 127.0.0.1\r\nConnection: keep-alive\r\n";
    req += "Content-Type: application/json\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;
    std::size_t sent = 0;
    while (sent < req.size()) {
      const ssize_t n = ::send(fd_, req.data() + sent, req.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool readMore() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    inbuf_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  bool readReply(HttpReply* reply, bool* closeAfter) {
    std::size_t headEnd;
    while ((headEnd = inbuf_.find("\r\n\r\n")) == std::string::npos)
      if (!readMore()) return false;
    const std::string head = inbuf_.substr(0, headEnd);
    if (head.rfind("HTTP/1.1 ", 0) == 0)
      reply->status = std::atoi(head.c_str() + 9);
    std::size_t contentLength = 0;
    std::istringstream lines(head);
    std::string line;
    std::getline(lines, line);  // status line
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string key = line.substr(0, colon);
      std::transform(key.begin(), key.end(), key.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      std::string value = line.substr(colon + 1);
      value.erase(0, value.find_first_not_of(" \t"));
      if (key == "content-length")
        contentLength = static_cast<std::size_t>(std::atol(value.c_str()));
      else if (key == "connection" && value.rfind("close", 0) == 0)
        *closeAfter = true;
    }
    const std::size_t bodyStart = headEnd + 4;
    while (inbuf_.size() - bodyStart < contentLength)
      if (!readMore()) {  // truncated body: report what arrived
        reply->body = inbuf_.substr(bodyStart);
        return false;
      }
    reply->body = inbuf_.substr(bodyStart, contentLength);
    reply->complete = true;
    inbuf_.erase(0, bodyStart + contentLength);
    return true;
  }

  int port_;
  int fd_ = -1;
  bool usedOnce_ = false;
  std::string inbuf_;
  ClientStats* stats_;
};

double quantileOf(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Pulls a single sample value out of a Prometheus text page. The
/// needle must match the start of the sample's name+labels exactly, so
/// `dp_requests_total{route=...}` finds the load balancer's own
/// (unlabeled-by-worker) counter and never a worker="N" line.
double metricValue(const std::string& page, const std::string& needle) {
  std::size_t pos = 0;
  while ((pos = page.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || page[pos - 1] == '\n') break;
    pos += needle.size();
  }
  if (pos == std::string::npos) return -1.0;
  const std::size_t eol = page.find('\n', pos);
  const std::string line = page.substr(pos, eol - pos);
  const std::size_t space = line.rfind(' ');
  return std::atof(line.c_str() + space + 1);
}

/// Sums every sample line starting with `prefix` (used to total a
/// counter family across the worker="N" labels the LB injects).
double sumMetricLines(const std::string& page, const std::string& prefix) {
  double total = 0.0;
  std::size_t pos = 0;
  bool any = false;
  while ((pos = page.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || page[pos - 1] == '\n') {
      const std::size_t eol = page.find('\n', pos);
      const std::string line = page.substr(pos, eol - pos);
      const std::size_t space = line.rfind(' ');
      total += std::atof(line.c_str() + space + 1);
      any = true;
    }
    pos += prefix.size();
  }
  return any ? total : -1.0;
}

std::string readFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Copies a saved bundle directory under a new name by rewriting the
/// manifest's "name" field. The manifest's checksums cover only the
/// data files, which are copied bit-for-bit, so the clone loads
/// cleanly — this is how one training run feeds the whole worker
/// fleet with distinct consistent-hash keys.
void cloneBundleDir(const fs::path& src, const fs::path& dst,
                    const std::string& newName) {
  fs::create_directories(dst);
  for (const auto& entry : fs::directory_iterator(src))
    fs::copy_file(entry.path(), dst / entry.path().filename(),
                  fs::copy_options::overwrite_existing);
  dp::io::Json manifest =
      dp::io::Json::parse(readFileOrEmpty(dst / "manifest.json"));
  manifest.set("name", newName);
  std::ofstream out(dst / "manifest.json", std::ios::binary);
  out << manifest.dump();
}

/// Strips the per-run timing fields; everything else in a /generate
/// response (pattern hashes, counts, moments) is a deterministic
/// function of the request, so two canonical forms must match byte
/// for byte.
std::string canonicalGenerateBody(const std::string& body) {
  dp::io::Json j = dp::io::Json::parse(body);
  j.set("latencyMs", 0.0);
  j.set("decodeBatches", 0L);
  return j.dump();
}

/// Lifts the soft RLIMIT_NOFILE to the hard limit so the
/// --connections hold mode can open 10k+ client sockets.
void raiseClientFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

/// Tail-latency gate against bench/baselines/serve.json: every entry
/// whose metric was measured this run must stay under its ceiling;
/// entries for modes that did not run are skipped.
int runCheck(const std::string& baselinePath,
             const std::map<std::string, double>& p99ByName, long held) {
  std::ifstream in(baselinePath);
  if (!in) {
    std::cerr << "serve_load: cannot open baseline " << baselinePath
              << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const dp::io::Json baseline = dp::io::Json::parse(ss.str());
  bool failed = false;
  int applied = 0;
  const auto& entries = baseline.at("entries");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries.at(i);
    const std::string name = entry.at("name").asString();
    const auto it = p99ByName.find(name);
    if (it == p99ByName.end()) {
      std::cout << "SKIP  " << name << ": mode not run\n";
      continue;
    }
    ++applied;
    bool ok = true;
    if (entry.has("p99_ms_max")) {
      const double ceiling = entry.at("p99_ms_max").asDouble();
      ok = it->second <= ceiling;
      std::cout << (ok ? "ok    " : "FAIL  ") << name << ": p99 "
                << it->second << " ms (ceiling " << ceiling << ")\n";
    }
    if (entry.has("min_held")) {
      const long floor = entry.at("min_held").asLong();
      const bool heldOk = held >= floor;
      std::cout << (heldOk ? "ok    " : "FAIL  ") << name << ": held "
                << held << " connections (floor " << floor << ")\n";
      ok = ok && heldOk;
    }
    failed = failed || !ok;
  }
  if (applied == 0) {
    std::cerr << "serve_load: no baseline entry matched a measured "
                 "metric — check the invocation\n";
    return 1;
  }
  if (failed) {
    std::cerr << "serve_load: tail-latency gate FAILED\n";
    return 1;
  }
  std::cout << "serve_load: tail-latency gate passed (" << applied
            << " entr" << (applied == 1 ? "y" : "ies") << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const int workers = static_cast<int>(args.getLong("workers", 0));

  // Deployment forks its supervisor at CONSTRUCTION and the forking
  // process must be thread-free, so this happens before anything that
  // could spin up the global ThreadPool (training, servers).
  std::unique_ptr<dp::serve::Deployment> deployment;
  if (workers > 0) {
    deployment = std::make_unique<dp::serve::Deployment>();
    if (!deployment->available()) {
      std::cerr << "serve_load: supervisor fork failed\n";
      return 1;
    }
  }
  raiseClientFdLimit();

  const int clients = static_cast<int>(args.getLong("clients", 8));
  const int requestsPer = static_cast<int>(args.getLong("requests", 4));
  const long count = args.getLong("count", 64);
  const long steps = args.getLong("steps", 300);
  const int clips = static_cast<int>(args.getLong("clips", 60));
  const auto seed = static_cast<std::uint64_t>(args.getLong("seed", 2019));
  const double rate = args.getDouble("rate", 0.0);
  const long holdConnections = args.getLong("connections", 0);
  const int holdThreads =
      std::max(1, static_cast<int>(args.getLong("hold-threads", 8)));
  const int sweepStride =
      std::max(1, static_cast<int>(args.getLong("sweep-stride", 16)));
  const int killWorker = static_cast<int>(args.getLong("kill-worker", -1));
  const char* faultSpec = std::getenv("DP_FAULTS");
  const bool chaos = faultSpec != nullptr && faultSpec[0] != '\0';
  const int bundleNames = workers > 0 ? 4 : 1;

  if (killWorker >= 0 && workers <= 0) {
    std::cerr << "serve_load: --kill-worker requires --workers\n";
    return 1;
  }
  if (holdConnections > 0 && workers <= 0) {
    // The held client sockets and the serving sockets must live in
    // different processes to share one default fd limit; the
    // deployment subtree provides exactly that isolation.
    std::cerr << "serve_load: --connections requires --workers\n";
    return 1;
  }

  dp::bench::printHeader(
      "serve_load: serving load benchmark",
      {{"clients", std::to_string(clients)},
       {"requests/client", std::to_string(requestsPer)},
       {"count/request", std::to_string(count)},
       {"loop", rate > 0.0 ? "open (--rate " + std::to_string(rate) + ")"
                           : "closed"},
       {"workers", workers > 0 ? std::to_string(workers) : "in-process"},
       {"held connections", std::to_string(holdConnections)},
       {"tcae-steps", std::to_string(steps)},
       {"clips", std::to_string(clips)},
       {"seed", std::to_string(seed)},
       {"chaos", chaos ? faultSpec : "off"}});

  // Train one small bundle in-process.
  dp::Rng rng(seed);
  dp::serve::BundleSpec spec;
  spec.name = workers > 0 ? "bench0" : "bench";
  spec.tcae.trainSteps = steps;
  spec.sourcePoolSize = 64;
  dp::serve::BundleBuildConfig build;
  const auto data = dp::bench::loadBenchmark(1, spec.rules, clips, rng);
  const auto bundle =
      dp::serve::buildBundle(spec, build, data.topologies, rng);

  dp::serve::PatternServer::Config config;
  config.batcher.queueCapacity =
      static_cast<int>(args.getLong("queue", 256));
  config.batcher.maxActive = static_cast<int>(args.getLong("active", 16));
  config.batcher.decodeBatch =
      static_cast<int>(args.getLong("batch", 128));

  std::unique_ptr<dp::serve::PatternServer> server;
  fs::path bundleRoot;
  int port = 0;
  if (workers > 0) {
    // Save the trained bundle and clone it under distinct names so the
    // consistent-hash ring routes the load across the fleet.
    bundleRoot = args.getString("bundle-dir", "serve_load_bundles.tmp");
    fs::remove_all(bundleRoot);
    bundle->save((bundleRoot / "bench0").string());
    for (int b = 1; b < bundleNames; ++b)
      cloneBundleDir(bundleRoot / "bench0",
                     bundleRoot / ("bench" + std::to_string(b)),
                     "bench" + std::to_string(b));
    dp::serve::Deployment::Options options;
    options.bundleRoot = bundleRoot.string();
    options.workers = workers;
    options.handlerThreads =
        static_cast<int>(args.getLong("lb-threads", 4));
    options.workerThreads =
        static_cast<int>(args.getLong("worker-threads", 0));
    deployment->launch(options);
    port = deployment->lbPort();
    std::cout << "deployment up: " << workers
              << " workers behind 127.0.0.1:" << port << "\n";
    for (const auto& w : deployment->queryWorkers())
      std::cout << "  worker " << w.id << " pid " << w.pid << " port "
                << w.port << "\n";
  } else {
    server = std::make_unique<dp::serve::PatternServer>(config);
    server->registry().add(bundle);
    server->start();
    port = server->port();
    std::cout << "serving on 127.0.0.1:" << port << "\n";
  }

  ClientStats stats;
  dp::Mutex latMutex;
  std::vector<double> latencies;
  dp::Mutex sampleMutex;
  // (payload, response body) pairs for the bit-identity check.
  std::vector<std::pair<std::string, std::string>> samples;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      KeepAliveClient client(port, &stats);
      for (int r = 0; r < requestsPer; ++r) {
        dp::io::Json body = dp::io::Json::object();
        body.set("bundle",
                 workers > 0 ? "bench" + std::to_string(c % bundleNames)
                             : std::string("bench"));
        body.set("count", count);
        body.set("seed",
                 std::to_string(seed + 1000 * c + static_cast<unsigned>(r)));
        const std::string payload = body.dump();
        // Open loop: arrival i = r*clients + c is scheduled at
        // t0 + i/rate; latency runs from the SCHEDULED time, so a
        // server that cannot keep up shows it as queueing delay.
        auto start = Clock::now();
        if (rate > 0.0) {
          const long i = static_cast<long>(r) * clients + c;
          const auto scheduled =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(i) / rate));
          std::this_thread::sleep_until(scheduled);
          start = scheduled;
        }
        for (int attempt = 0;; ++attempt) {
          const HttpReply reply =
              client.call("POST", "/generate", payload);
          const bool broken =
              reply.status == 0 || (reply.status == 200 && !reply.complete);
          const bool retryable =
              reply.status == 429 || (chaos && (broken || reply.status == 503));
          if (retryable && attempt < 50) {
            ++stats.retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
          }
          if (reply.status != 200 || broken) {
            ++stats.errors;
            std::cerr << "request failed: status " << reply.status << " "
                      << reply.body.substr(0, 120) << "\n";
            break;
          }
          const auto elapsed = Clock::now() - start;
          const double ms =
              std::chrono::duration<double, std::milli>(elapsed).count();
          try {
            const dp::io::Json res = dp::io::Json::parse(reply.body);
            stats.generatedTotal += res.at("generated").asLong();
          } catch (const std::exception& e) {
            if (chaos && attempt < 50) {
              ++stats.retried;
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              continue;
            }
            ++stats.errors;
            std::cerr << "bad response body: " << e.what() << "\n";
            break;
          }
          ++stats.ok;
          if (r == 0 && workers > 0) {
            dp::LockGuard lock(sampleMutex);
            samples.emplace_back(payload, reply.body);
          }
          {
            dp::LockGuard lock(latMutex);
            latencies.push_back(ms);
          }
          break;
        }
      }
    });
  }

  // Chaos controller: SIGKILL a worker once the run is in flight.
  std::thread chaosThread;
  if (killWorker >= 0) {
    chaosThread = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          args.getLong("kill-after-ms", 500)));
      std::cout << "chaos: SIGKILL worker " << killWorker << "\n";
      deployment->killWorker(killWorker);
    });
  }
  for (auto& t : threads) t.join();
  if (chaosThread.joinable()) chaosThread.join();
  const auto total = Clock::now() - t0;
  const double totalSec = std::chrono::duration<double>(total).count();

  // Connection-hold phase: open N keep-alive connections, prove each
  // usable with one request, verify the front end's own gauge sees
  // them all open at once, then sweep a sample with a second request.
  long held = 0;
  std::vector<double> sweepLats;
  if (holdConnections > 0) {
    std::cout << "\nopening " << holdConnections
              << " keep-alive connections...\n";
    std::vector<std::unique_ptr<KeepAliveClient>> conns(
        static_cast<std::size_t>(holdConnections));
    std::atomic<long> pinged{0};
    const auto holdWorker = [&](int t, bool sweep) {
      for (std::size_t i = static_cast<std::size_t>(t); i < conns.size();
           i += static_cast<std::size_t>(holdThreads)) {
        if (!sweep) {
          conns[i] = std::make_unique<KeepAliveClient>(port, &stats);
          const HttpReply r = conns[i]->call("GET", "/bundles", "");
          if (r.status == 200 && r.complete) ++pinged;
        } else if (i % static_cast<std::size_t>(sweepStride) == 0) {
          const auto s = Clock::now();
          const HttpReply r = conns[i]->call("GET", "/bundles", "");
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - s)
                                .count();
          if (r.status == 200 && r.complete) {
            dp::LockGuard lock(latMutex);
            sweepLats.push_back(ms);
          }
        }
      }
    };
    std::vector<std::thread> holders;
    for (int t = 0; t < holdThreads; ++t)
      holders.emplace_back(holdWorker, t, false);
    for (auto& t : holders) t.join();
    held = pinged.load();
    KeepAliveClient probe(port, nullptr);
    const HttpReply metricsReply = probe.call("GET", "/metrics", "");
    const double open =
        metricValue(metricsReply.body, "dp_connections_open");
    std::cout << "connections held   : " << held << " (server gauge "
              << open << ")\n";
    if (open < static_cast<double>(held)) {
      // The gauge counts this probe too, so >= held is the invariant.
      std::cerr << "FAIL: dp_connections_open " << open << " < " << held
                << " held connections\n";
      ++stats.errors;
    }
    holders.clear();
    for (int t = 0; t < holdThreads; ++t)
      holders.emplace_back(holdWorker, t, true);
    for (auto& t : holders) t.join();
    std::cout << "sweep p50 / p99    : " << quantileOf(sweepLats, 0.5)
              << " / " << quantileOf(sweepLats, 0.99) << " ms ("
              << sweepLats.size() << " sampled)\n";
    conns.clear();  // closes everything
  }

  // Scrape the authoritative counters before shutdown. Under chaos the
  // exchange itself can hit an injected fault, so retry until a
  // complete page arrives.
  KeepAliveClient scraper(port, nullptr);
  HttpReply metrics = scraper.call("GET", "/metrics", "");
  for (int attempt = 0;
       chaos && !(metrics.status == 200 && metrics.complete) &&
       attempt < 50;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    metrics = scraper.call("GET", "/metrics", "");
  }
  scraper.closeConn();

  // In deployment mode the LB's own (worker-unlabeled) counters are
  // authoritative for what clients observed: they survive worker
  // kills, while a dead worker's counters vanish from the aggregation.
  const double served = metricValue(
      metrics.body, "dp_requests_total{route=\"/generate\",status=\"200\"}");
  const double reuses =
      metricValue(metrics.body, "dp_keepalive_reuses_total");
  const double lbRetries = metricValue(metrics.body, "dp_lb_retries_total");
  const double workersAlive =
      metricValue(metrics.body, "dp_lb_workers_alive");
  const double bundleGenerated =
      workers > 0
          ? sumMetricLines(metrics.body, "dp_bundle_generated_total{worker=")
          : metricValue(metrics.body,
                        "dp_bundle_generated_total{bundle=\"bench\"}");
  const double occCount =
      workers > 0 ? -1.0 : metricValue(metrics.body,
                                       "dp_batch_occupancy_count");
  const double occSum =
      workers > 0 ? -1.0 : metricValue(metrics.body, "dp_batch_occupancy_sum");

  // Bit-identity: replay a sample of the exact requests through an
  // in-process server loaded from the same bundle root and demand the
  // canonical response bodies match byte for byte.
  long verified = 0;
  if (workers > 0 && !samples.empty()) {
    dp::serve::PatternServer reference(config);
    reference.loadBundles(bundleRoot.string());
    for (const auto& [payload, observed] : samples) {
      dp::serve::HttpRequest req;
      req.method = "POST";
      req.target = "/generate";
      req.body = payload;
      const dp::serve::HttpResponse local = reference.handle(req);
      if (local.status != 200 ||
          canonicalGenerateBody(local.body) !=
              canonicalGenerateBody(observed)) {
        std::cerr << "FAIL: response for " << payload
                  << " differs from in-process generation\n";
        ++stats.errors;
      } else {
        ++verified;
      }
    }
  }

  // Post-kill invariant: the worker must be back (same id, new pid).
  if (killWorker >= 0) {
    bool respawned = false;
    for (int poll = 0; poll < 100 && !respawned; ++poll) {
      for (const auto& w : deployment->queryWorkers())
        if (w.id == killWorker && w.pid > 0) respawned = true;
      if (!respawned)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!respawned) {
      std::cerr << "FAIL: worker " << killWorker
                << " not respawned after SIGKILL\n";
      ++stats.errors;
    } else {
      std::cout << "worker " << killWorker
                << " respawned after SIGKILL (lb retries "
                << lbRetries << ")\n";
    }
  }

  if (deployment) deployment->stop();
  if (server) server->stop();
  if (!bundleRoot.empty()) fs::remove_all(bundleRoot);

  const double meanOccupancy = occCount > 0 ? occSum / occCount : 0.0;
  const double p50 = quantileOf(latencies, 0.5);
  const double p99 = quantileOf(latencies, 0.99);
  std::cout << "\nrequests ok        : " << stats.ok.load() << "\n";
  std::cout << "requests retried   : " << stats.retried.load() << "\n";
  std::cout << "requests errored   : " << stats.errors.load() << "\n";
  std::cout << "connections opened : " << stats.connectsOpened.load()
            << "\n";
  std::cout << "reused-conn reqs   : " << stats.reusedRequests.load()
            << "\n";
  std::cout << "throughput         : "
            << static_cast<double>(stats.ok.load()) / totalSec
            << " req/s\n";
  if (rate > 0.0)
    std::cout << "target rate        : " << rate << " req/s (open loop)\n";
  std::cout << "latency p50 / p99  : " << p50 << " / " << p99 << " ms\n";
  if (workers <= 0)
    std::cout << "mean batch occupancy: " << meanOccupancy << "\n";
  std::cout << "server 200s        : " << served << "\n";
  std::cout << "server generated   : " << bundleGenerated << "\n";
  std::cout << "server ka reuses   : " << reuses << "\n";
  if (workers > 0) {
    std::cout << "workers alive      : " << workersAlive << "\n";
    std::cout << "lb retries         : " << lbRetries << "\n";
    std::cout << "bit-identical      : " << verified << "/"
              << samples.size() << " sampled responses\n";
  }

  bool failed = false;
  if (stats.errors.load() > 0) {
    std::cerr << "FAIL: errored requests\n";
    failed = true;
  }
  const bool exactCounts = !chaos && killWorker < 0;
  if (exactCounts) {
    if (static_cast<long>(served) != stats.ok.load()) {
      std::cerr << "FAIL: /metrics 200-count " << served
                << " != client count " << stats.ok.load() << "\n";
      failed = true;
    }
    if (static_cast<long>(bundleGenerated) != stats.generatedTotal.load()) {
      std::cerr << "FAIL: /metrics generated " << bundleGenerated
                << " != client total " << stats.generatedTotal.load()
                << "\n";
      failed = true;
    }
    // Every request a client completed on a reused connection was
    // parsed by the server as request 2+ on that connection.
    if (static_cast<long>(reuses) < stats.reusedRequests.load()) {
      std::cerr << "FAIL: /metrics keep-alive reuses " << reuses
                << " < client reused requests "
                << stats.reusedRequests.load() << "\n";
      failed = true;
    }
  } else {
    // Send-side faults can drop a response the server already counted
    // (and a killed worker's counters vanish), so only the
    // client-cannot-see-more-than-the-front-served inequality holds.
    if (static_cast<long>(served) < stats.ok.load()) {
      std::cerr << "FAIL: /metrics 200-count " << served
                << " < client count " << stats.ok.load() << "\n";
      failed = true;
    }
  }

  if (args.has("latency-json")) {
    const std::string path = args.getString("latency-json");
    if (!path.empty()) {
      dp::io::Json out = dp::io::Json::object();
      out.set("clients", static_cast<long>(clients));
      out.set("workers", static_cast<long>(workers));
      out.set("openLoopRate", rate);
      out.set("requestsOk", stats.ok.load());
      out.set("requestsErrored", stats.errors.load());
      out.set("connectionsOpened", stats.connectsOpened.load());
      out.set("reusedConnRequests", stats.reusedRequests.load());
      out.set("connectionsHeld", held);
      out.set("throughputRps",
              static_cast<double>(stats.ok.load()) / totalSec);
      out.set("p50Ms", p50);
      out.set("p99Ms", p99);
      out.set("sweepP99Ms", quantileOf(sweepLats, 0.99));
      out.set("meanBatchOccupancy", meanOccupancy);
      dp::io::Json lat = dp::io::Json::array();
      for (const double ms : latencies) lat.push(dp::io::Json(ms));
      out.set("latenciesMs", std::move(lat));
      std::ofstream file(path);
      file << out.dump() << "\n";
      std::cout << "wrote latency report to " << path << "\n";
    }
  }

  if (args.has("check")) {
    std::map<std::string, double> p99ByName;
    p99ByName[rate > 0.0 ? "open_loop_generate" : "closed_loop_generate"] =
        p99;
    if (holdConnections > 0)
      p99ByName["connection_sweep"] = quantileOf(sweepLats, 0.99);
    const int gate = runCheck(args.getString("check"), p99ByName, held);
    if (gate != 0) failed = true;
  }
  return failed ? 1 : 0;
}
