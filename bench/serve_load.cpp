// serve_load — closed-loop load generator for the pattern-generation
// service. Trains a small bundle in-process, starts the server on an
// ephemeral port, and drives it with N concurrent HTTP clients, each
// issuing a fixed number of seeded generate requests over real
// sockets. Reports throughput, latency quantiles, and batch occupancy,
// and cross-checks the server's /metrics counters against the clients'
// own totals (a mismatch exits non-zero, so CI can run this as a
// smoke test).
//
//   serve_load --clients 8 --requests 4 --count 64 --steps 300
//              --clips 60 [--latency-json out.json]
//
// Chaos mode: when DP_FAULTS is set in the environment (see
// src/common/fault.hpp) the injected faults make individual exchanges
// fail by design, so clients additionally retry dropped connections
// (status 0) and sheds (503), and the exact client-vs-server counter
// cross-checks relax to inequalities — a send-side fault can lose a
// response the server already counted as a 200.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/sync.hpp"
#include "io/json.hpp"
#include "serve/server.hpp"

namespace {

struct HttpReply {
  int status = 0;
  std::string body;
  bool complete = false;  // body length matches the Content-Length header
};

/// One-shot HTTP exchange (Connection: close) against 127.0.0.1:port.
HttpReply httpCall(int port, const std::string& method,
                   const std::string& path, const std::string& body) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return reply;
  }
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\nConnection: close\r\n";
  req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    raw.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0)
    reply.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    reply.body = raw.substr(split + 4);
    const std::size_t cl = raw.find("Content-Length: ");
    if (cl != std::string::npos && cl < split)
      reply.complete =
          reply.body.size() ==
          static_cast<std::size_t>(std::atol(raw.c_str() + cl + 16));
  }
  return reply;
}

double quantileOf(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Pulls a single counter value out of a Prometheus text page.
double metricValue(const std::string& page, const std::string& needle) {
  const std::size_t pos = page.find(needle);
  if (pos == std::string::npos) return -1.0;
  const std::size_t eol = page.find('\n', pos);
  const std::string line = page.substr(pos, eol - pos);
  const std::size_t space = line.rfind(' ');
  return std::atof(line.c_str() + space + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const int clients = static_cast<int>(args.getLong("clients", 8));
  const int requestsPer = static_cast<int>(args.getLong("requests", 4));
  const long count = args.getLong("count", 64);
  const long steps = args.getLong("steps", 300);
  const int clips = static_cast<int>(args.getLong("clips", 60));
  const auto seed =
      static_cast<std::uint64_t>(args.getLong("seed", 2019));
  const char* faultSpec = std::getenv("DP_FAULTS");
  const bool chaos = faultSpec != nullptr && faultSpec[0] != '\0';

  dp::bench::printHeader(
      "serve_load: closed-loop serving benchmark",
      {{"clients", std::to_string(clients)},
       {"requests/client", std::to_string(requestsPer)},
       {"count/request", std::to_string(count)},
       {"tcae-steps", std::to_string(steps)},
       {"clips", std::to_string(clips)},
       {"seed", std::to_string(seed)},
       {"chaos", chaos ? faultSpec : "off"}});

  // Train a small bundle in-process.
  dp::Rng rng(seed);
  dp::serve::BundleSpec spec;
  spec.name = "bench";
  spec.tcae.trainSteps = steps;
  spec.sourcePoolSize = 64;
  dp::serve::BundleBuildConfig build;
  const auto data =
      dp::bench::loadBenchmark(1, spec.rules, clips, rng);
  const auto bundle =
      dp::serve::buildBundle(spec, build, data.topologies, rng);

  dp::serve::PatternServer::Config config;
  config.batcher.queueCapacity =
      static_cast<int>(args.getLong("queue", 256));
  config.batcher.maxActive =
      static_cast<int>(args.getLong("active", 16));
  config.batcher.decodeBatch =
      static_cast<int>(args.getLong("batch", 128));
  dp::serve::PatternServer server(config);
  server.registry().add(bundle);
  server.start();
  const int port = server.port();
  std::cout << "serving on 127.0.0.1:" << port << "\n";

  std::atomic<long> ok{0};
  std::atomic<long> retried{0};
  std::atomic<long> errors{0};
  std::atomic<long> generatedTotal{0};
  dp::Mutex latMutex;
  std::vector<double> latencies;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requestsPer; ++r) {
        dp::io::Json body = dp::io::Json::object();
        body.set("bundle", "bench");
        body.set("count", count);
        body.set("seed",
                 std::to_string(seed + 1000 * c + static_cast<unsigned>(r)));
        const std::string payload = body.dump();
        for (int attempt = 0;; ++attempt) {
          const auto start = std::chrono::steady_clock::now();
          const HttpReply reply =
              httpCall(port, "POST", "/generate", payload);
          const bool retryable =
              reply.status == 429 ||
              (chaos && (reply.status == 0 || reply.status == 503));
          if (retryable && attempt < 50) {
            ++retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
          }
          if (reply.status != 200) {
            ++errors;
            std::cerr << "request failed: status " << reply.status << " "
                      << reply.body.substr(0, 120) << "\n";
            break;
          }
          const auto elapsed = std::chrono::steady_clock::now() - start;
          const double ms =
              std::chrono::duration<double, std::milli>(elapsed).count();
          try {
            const dp::io::Json res = dp::io::Json::parse(reply.body);
            generatedTotal += res.at("generated").asLong();
          } catch (const std::exception& e) {
            // An injected send fault can cut a 200 short mid-body.
            if (chaos && attempt < 50) {
              ++retried;
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              continue;
            }
            ++errors;
            std::cerr << "bad response body: " << e.what() << "\n";
            break;
          }
          ++ok;
          dp::LockGuard lock(latMutex);
          latencies.push_back(ms);
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto total = std::chrono::steady_clock::now() - t0;
  const double totalSec =
      std::chrono::duration<double>(total).count();

  // Cross-check the server's own accounting before shutdown. Under
  // chaos the metrics exchange itself can hit an injected fault (drop
  // the connection or truncate the page mid-body), so retry until a
  // complete page arrives.
  const auto metricsComplete = [](const HttpReply& r) {
    return r.status == 200 && r.complete;
  };
  HttpReply metrics = httpCall(port, "GET", "/metrics", "");
  for (int attempt = 0; chaos && !metricsComplete(metrics) && attempt < 50;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    metrics = httpCall(port, "GET", "/metrics", "");
  }
  const double served = metricValue(
      metrics.body, "dp_requests_total{route=\"/generate\",status=\"200\"}");
  const double occCount = metricValue(metrics.body,
                                      "dp_batch_occupancy_count");
  const double occSum = metricValue(metrics.body, "dp_batch_occupancy_sum");
  const double bundleGenerated =
      metricValue(metrics.body, "dp_bundle_generated_total{bundle=\"bench\"}");
  server.stop();

  const double meanOccupancy = occCount > 0 ? occSum / occCount : 0.0;
  const double p50 = quantileOf(latencies, 0.5);
  const double p99 = quantileOf(latencies, 0.99);
  std::cout << "\nrequests ok        : " << ok.load() << "\n";
  std::cout << "requests retried   : " << retried.load() << "\n";
  std::cout << "requests errored   : " << errors.load() << "\n";
  std::cout << "throughput         : "
            << static_cast<double>(ok.load()) / totalSec << " req/s\n";
  std::cout << "latency p50 / p99  : " << p50 << " / " << p99 << " ms\n";
  std::cout << "mean batch occupancy: " << meanOccupancy << "\n";
  std::cout << "server 200s        : " << served << "\n";
  std::cout << "server generated   : " << bundleGenerated << "\n";

  bool failed = false;
  if (errors.load() > 0) {
    std::cerr << "FAIL: errored requests\n";
    failed = true;
  }
  if (chaos) {
    // Send-side faults can drop a response the server already counted,
    // so the server may legitimately have seen more 200s than the
    // clients did — but never fewer.
    if (static_cast<long>(served) < ok.load()) {
      std::cerr << "FAIL: /metrics 200-count " << served
                << " < client count " << ok.load() << "\n";
      failed = true;
    }
    if (static_cast<long>(bundleGenerated) < generatedTotal.load()) {
      std::cerr << "FAIL: /metrics generated " << bundleGenerated
                << " < client total " << generatedTotal.load() << "\n";
      failed = true;
    }
  } else {
    if (static_cast<long>(served) != ok.load()) {
      std::cerr << "FAIL: /metrics 200-count " << served
                << " != client count " << ok.load() << "\n";
      failed = true;
    }
    if (static_cast<long>(bundleGenerated) != generatedTotal.load()) {
      std::cerr << "FAIL: /metrics generated " << bundleGenerated
                << " != client total " << generatedTotal.load() << "\n";
      failed = true;
    }
  }

  if (args.has("latency-json")) {
    // Args stores the value; re-parse argv to find it.
    std::string path;
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--latency-json") path = argv[i + 1];
    if (!path.empty()) {
      dp::io::Json out = dp::io::Json::object();
      out.set("clients", static_cast<long>(clients));
      out.set("requestsOk", ok.load());
      out.set("requestsErrored", errors.load());
      out.set("throughputRps",
              static_cast<double>(ok.load()) / totalSec);
      out.set("p50Ms", p50);
      out.set("p99Ms", p99);
      out.set("meanBatchOccupancy", meanOccupancy);
      dp::io::Json lat = dp::io::Json::array();
      for (const double ms : latencies) lat.push(dp::io::Json(ms));
      out.set("latenciesMs", std::move(lat));
      std::ofstream file(path);
      file << out.dump() << "\n";
      std::cout << "wrote latency report to " << path << "\n";
    }
  }
  return failed ? 1 : 0;
}
