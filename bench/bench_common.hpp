#pragma once

/// \file bench_common.hpp
/// Shared infrastructure for the experiment harnesses: command-line
/// scale knobs, run headers, and the standard "train a TCAE on a
/// benchmark group" step most experiments start from.
///
/// Every harness prints its effective parameters, so a run is fully
/// reproducible from its own output. Paper-scale runs (1M samples) are
/// reachable by raising --count; defaults are sized for a single CPU
/// core (see EXPERIMENTS.md).

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/flows.hpp"
#include "core/sensitivity.hpp"
#include "datagen/generator.hpp"
#include "drc/topology_rules.hpp"
#include "geometry/design_rules.hpp"
#include "models/tcae.hpp"

namespace dp::bench {

/// Tiny --key value / --key=value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) continue;
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        values_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[a] = argv[++i];
      } else {
        // Explicit std::string: assigning the literal via operator=
        // (const char*) trips a gcc 12 -Wrestrict false positive
        // (GCC PR105329) under -O3 -Werror.
        values_[a] = std::string("1");  // boolean flag
      }
    }
  }

  [[nodiscard]] long getLong(const std::string& key, long def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::stol(it->second);
  }
  [[nodiscard]] double getDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::stod(it->second);
  }
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& def = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Prints the standard experiment header.
inline void printHeader(const std::string& title,
                        const std::vector<std::pair<std::string, std::string>>&
                            params) {
  std::cout << "=====================================================\n";
  std::cout << title << "\n";
  std::cout << "=====================================================\n";
  for (const auto& [k, v] : params) std::cout << "  " << k << " = " << v << "\n";
  std::cout << "  (override via --count --tcae-steps --gan-steps --clips "
               "--seed)\n\n";
}

/// Default experiment scales (overridable via --count / --tcae-steps /
/// --gan-steps / --clips / --seed on every harness).
struct Scale {
  long count = 20000;      ///< generated topologies per method
  long tcaeSteps = 3500;   ///< TCAE training steps
  long ganSteps = 1000;    ///< GAN/VAE guide training steps
  int clips = 800;         ///< synthetic clips per benchmark group
  /// TCAE learning rate. The paper trains 10000 steps at 1e-3 on a GPU;
  /// 5000 steps at 2e-3 (decayed by 0.7 every 2500) reaches the same
  /// reconstruction fidelity in half the CPU time.
  double lr = 2e-3;
  std::uint64_t seed = 2019;

  static Scale fromArgs(const Args& args) {
    Scale s;
    s.count = args.getLong("count", s.count);
    s.tcaeSteps = args.getLong("tcae-steps", s.tcaeSteps);
    s.ganSteps = args.getLong("gan-steps", s.ganSteps);
    s.clips = static_cast<int>(args.getLong("clips", s.clips));
    s.lr = args.getDouble("lr", s.lr);
    s.seed = static_cast<std::uint64_t>(args.getLong("seed", 2019));
    return s;
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> describe()
      const {
    return {{"count", std::to_string(count)},
            {"tcae-steps", std::to_string(tcaeSteps)},
            {"gan-steps", std::to_string(ganSteps)},
            {"clips", std::to_string(clips)},
            {"lr", std::to_string(lr)},
            {"seed", std::to_string(seed)}};
  }
};

/// One benchmark group materialized: clips + extracted topologies.
struct BenchmarkData {
  dp::datagen::LibrarySpec spec;
  std::vector<dp::Clip> clips;
  std::vector<dp::squish::Topology> topologies;
};

inline BenchmarkData loadBenchmark(int index, const dp::DesignRules& rules,
                                   int clipCount, dp::Rng& rng) {
  BenchmarkData d;
  d.spec = dp::datagen::directprintSpec(index);
  d.clips = dp::datagen::generateLibrary(d.spec, rules, clipCount, rng);
  d.topologies = dp::datagen::extractTopologies(d.clips);
  return d;
}

/// Trains the paper's TCAE on a topology set.
inline dp::models::Tcae trainTcae(
    const std::vector<dp::squish::Topology>& topologies, long steps,
    dp::Rng& rng, double lr = 2e-3) {
  dp::models::TcaeConfig cfg;
  cfg.trainSteps = steps;
  cfg.initialLr = lr;
  cfg.lrDecayEvery = std::max<long>(steps / 2, 1);
  dp::models::Tcae tcae(cfg, rng);
  tcae.train(topologies, rng);
  return tcae;
}

/// Runs Algorithm 1 with the standard experiment settings.
inline std::vector<double> sensitivities(
    dp::models::Tcae& tcae,
    const std::vector<dp::squish::Topology>& topologies,
    const dp::drc::TopologyChecker& checker) {
  dp::core::SensitivityConfig cfg;
  cfg.maxTopologies = 32;
  cfg.sweepSteps = 5;
  return dp::core::estimateSensitivity(tcae, topologies, checker, cfg);
}

}  // namespace dp::bench
