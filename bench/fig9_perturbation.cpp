// Reproduces paper Fig. 9: 1000 Gaussian perturbations of ONE existing
// pattern's latent vector create a large set of new topologies, a
// substantial fraction of them legal (the paper reports ~400/1000),
// while the same noise applied directly in pattern space creates none.
//
// Also runs the ablation DESIGN.md calls out: sensitivity-aware noise
// (Algorithm 1, sigma_i^2 = 1/s_i) versus uniform noise at several
// scales.

#include <iostream>

#include "bench_common.hpp"
#include "core/perturb.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"

namespace {

struct NoiseOutcome {
  long legal = 0;
  long uniqueLegal = 0;
};

NoiseOutcome perturbOne(dp::models::Tcae& tcae,
                        const dp::nn::Tensor& latent,
                        const dp::core::SensitivityAwarePerturber& p,
                        const dp::drc::TopologyChecker& checker,
                        long samples, dp::Rng& rng) {
  NoiseOutcome out;
  dp::core::PatternLibrary unique;
  const int batch = 128;
  long remaining = samples;
  while (remaining > 0) {
    const int b = static_cast<int>(std::min<long>(remaining, batch));
    dp::nn::Tensor l({b, latent.size(1)});
    for (int i = 0; i < b; ++i) {
      const auto noise = p.sample(rng);
      for (int c = 0; c < latent.size(1); ++c)
        l.at(i, c) = latent.at(0, c) + noise[static_cast<std::size_t>(c)];
    }
    for (const auto& t : dp::models::decodeGeneratedTopologies(tcae.decode(l))) {
      if (!checker.isLegal(t)) continue;
      ++out.legal;
      if (unique.add(t)) ++out.uniqueLegal;
    }
    remaining -= b;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  scale.count = args.getLong("count", 1000);  // paper: 1000 samples
  dp::bench::printHeader(
      "Fig. 9 — Gaussian perturbation of one topology's latent vector",
      scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);
  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);

  const auto& seed = data.topologies.front();
  const dp::nn::Tensor latent =
      tcae.encode(dp::models::encodeTopology(seed));
  std::cout << "Perturbed topology:\n"
            << dp::io::renderTopology(dp::squish::canonicalize(seed))
            << "\n";

  const auto sens = dp::bench::sensitivities(tcae, data.topologies, checker);

  dp::io::Table table({"noise", "samples", "legal", "unique legal"});
  auto addRow = [&](const std::string& name,
                    const dp::core::SensitivityAwarePerturber& p) {
    const auto o =
        perturbOne(tcae, latent, p, checker, scale.count, rng);
    table.addRow({name, std::to_string(scale.count),
                  std::to_string(o.legal), std::to_string(o.uniqueLegal)});
  };
  addRow("sensitivity-aware (paper)",
         dp::core::SensitivityAwarePerturber(sens, 1.0));
  addRow("uniform sigma=0.5",
         dp::core::SensitivityAwarePerturber::uniformNoise(
             static_cast<int>(sens.size()), 0.5));
  addRow("uniform sigma=1.0",
         dp::core::SensitivityAwarePerturber::uniformNoise(
             static_cast<int>(sens.size()), 1.0));
  addRow("uniform sigma=2.0",
         dp::core::SensitivityAwarePerturber::uniformNoise(
             static_cast<int>(sens.size()), 2.0));

  // Pattern-space ablation: the same Gaussian noise on the raw image.
  {
    long legal = 0;
    const dp::nn::Tensor img = dp::models::encodeTopology(seed);
    for (long i = 0; i < scale.count; ++i) {
      dp::nn::Tensor noisy = img;
      for (std::size_t k = 0; k < noisy.numel(); ++k)
        noisy[k] += static_cast<float>(rng.gaussian(0.0, 1.0));
      if (checker.isLegal(dp::models::decodeGeneratedTopology(noisy, 0))) ++legal;
    }
    table.addRow({"pattern-space sigma=1.0 (ablation)",
                  std::to_string(scale.count), std::to_string(legal),
                  "-"});
  }
  std::cout << table.toString();
  std::cout << "\nExpected shape (paper Fig. 9): latent-space noise on one "
               "pattern yields a large\nlegal fraction (paper: ~40%); "
               "pattern-space noise yields essentially zero.\n";
  return 0;
}
