// Reproduces paper Table I: how transformations of individual latent
// vector nodes are reflected in topology space. For several latent
// nodes, the harness sweeps the node over a range while keeping
// everything else fixed, decodes, and prints the transformed topologies
// plus a characterization of what changed (shape count, complexity).

#include <iostream>

#include "bench_common.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"
#include "squish/complexity.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  const int nodes = static_cast<int>(args.getLong("nodes", 8));
  dp::bench::printHeader(
      "Table I — latent-node transformations in topology space",
      scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);
  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);

  const auto& seed = data.topologies.front();
  const dp::nn::Tensor latent =
      tcae.encode(dp::models::encodeTopology(seed));
  std::cout << "Seed topology (canonical):\n"
            << dp::io::renderTopology(dp::squish::canonicalize(seed))
            << "\n";

  dp::io::Table summary({"node", "effect on ones-count (λ=-2 .. +2)",
                         "effect on cx", "legal fraction"});
  const std::vector<double> lambdas{-2.0, -1.0, 0.0, 1.0, 2.0};
  for (int node = 0; node < std::min(nodes, latent.size(1)); ++node) {
    std::vector<dp::squish::Topology> sweep;
    std::string onesTrend, cxTrend;
    int legal = 0;
    for (double lambda : lambdas) {
      dp::nn::Tensor l = latent;
      l.at(0, node) += static_cast<float>(lambda);
      const auto t = dp::models::decodeGeneratedTopology(tcae.decode(l), 0);
      const auto canon = dp::squish::canonicalize(t);
      sweep.push_back(canon);
      if (!onesTrend.empty()) onesTrend += " ";
      onesTrend += std::to_string(canon.onesCount());
      if (!cxTrend.empty()) cxTrend += " ";
      cxTrend += std::to_string(
          dp::squish::complexityOfCanonical(canon).cx);
      if (checker.isLegal(t)) ++legal;
    }
    std::cout << "node " << node << " swept over {-2,-1,0,+1,+2}:\n"
              << dp::io::renderTopologyRow(sweep) << "\n";
    summary.addRow({std::to_string(node), onesTrend, cxTrend,
                    dp::io::Table::num(
                        static_cast<double>(legal) / lambdas.size(), 2)});
  }
  std::cout << summary.toString();
  std::cout << "\nExpected shape (paper Table I): different nodes move "
               "line-ends,\ncreate/destroy shapes, or change complexity; "
               "transformations near λ=0 stay legal.\n";
  return 0;
}
