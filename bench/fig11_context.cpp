// Reproduces paper Fig. 11: context-specific pattern generation on
// directprint1 — latent vectors of the training library are grouped by
// pattern complexity, one GAN is trained per group, and each GAN then
// generates patterns of its class. The quantitative check is the
// ordered average complexity of the generated groups (paper: avg cx
// 9.3 / 10.3 / 11 for low / medium / high, avg cy pinned at ~11-12).

#include <iostream>

#include "bench_common.hpp"
#include "core/gtcae.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"
#include "squish/complexity.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  const dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  dp::bench::printHeader("Fig. 11 — context-specific pattern generation",
                         scale.describe());

  dp::Rng rng(scale.seed);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));
  auto data = dp::bench::loadBenchmark(1, rules, scale.clips, rng);
  auto tcae = dp::bench::trainTcae(data.topologies, scale.tcaeSteps, rng, scale.lr);

  const auto bands = dp::core::contextBandsByQuantiles(data.topologies);
  std::cout << "Training-library cx bands (terciles): "
            << bands[0].minCx << ".." << bands[0].maxCx << " / "
            << bands[1].minCx << ".." << bands[1].maxCx << " / "
            << bands[2].minCx << ".." << bands[2].maxCx << "\n\n";

  dp::core::GtcaeConfig cfg;
  cfg.flow.count = scale.count;
  cfg.gan.trainSteps = scale.ganSteps;
  const auto groups = dp::core::gtcaeContextSpecific(
      tcae, data.topologies, checker, bands, cfg, rng);

  dp::io::Table table({"Group", "cx band", "Train latents", "Generated",
                       "Unique legal", "avg cx", "avg cy"});
  for (const auto& g : groups) {
    table.addRow({g.band.name,
                  std::to_string(g.band.minCx) + ".." +
                      std::to_string(g.band.maxCx),
                  std::to_string(g.trainingCount),
                  std::to_string(g.result.generated),
                  std::to_string(g.result.unique.size()),
                  dp::io::Table::num(g.avgCx, 1),
                  dp::io::Table::num(g.avgCy, 1)});
  }
  std::cout << table.toString() << "\n";

  for (const auto& g : groups) {
    const auto patterns = g.result.unique.patterns();
    if (patterns.size() < 3) continue;
    std::cout << "Samples, " << g.band.name << ":\n"
              << dp::io::renderTopologyRow(
                     {patterns[0], patterns[1], patterns[2]})
              << "\n";
  }
  std::cout << "Expected shape (paper Fig. 11): avg cx strictly ordered "
               "low < med < high;\navg cy roughly constant (the training "
               "set pins cy at 11-12).\n";
  return 0;
}
