// Quantifies the squish-representation storage claim of paper §III-A:
// a squish pattern stores the same clip losslessly in far fewer bytes
// than a 1 bit / nm^2 raster. Reproduces the paper's 29.5 B vs 512 B
// example and measures the ratio over a real synthetic library.

#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "squish/extract.hpp"
#include "squish/squish_pattern.hpp"

int main(int argc, char** argv) {
  const dp::bench::Args args(argc, argv);
  dp::bench::Scale scale = dp::bench::Scale::fromArgs(args);
  dp::bench::printHeader("§III-A — squish pattern storage model",
                         scale.describe());

  // The paper's worked example: 64x64nm clip, 3x4 topology.
  {
    dp::squish::SquishPattern p;
    p.topo = dp::squish::Topology(3, 4);
    p.dx = {16, 16, 16, 16};
    p.dy = {20, 20, 24};
    std::cout << "Paper example (64x64nm clip, 3x4 topology): "
              << dp::squish::squishStorageBytes(p) << " B squish vs "
              << dp::squish::imageStorageBytes(64, 64)
              << " B raster (paper: 29.5 vs 512)\n\n";
  }

  const dp::DesignRules rules = dp::euv7nmM2();
  dp::io::Table table({"Benchmark", "Clips", "Avg squish B",
                       "Raster B", "Compression x"});
  for (int bm = 1; bm <= 5; ++bm) {
    dp::Rng rng(scale.seed + static_cast<std::uint64_t>(bm));
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(bm), rules, scale.clips, rng);
    double total = 0;
    long n = 0;
    for (const auto& c : clips) {
      total += dp::squish::squishStorageBytes(dp::squish::extract(c));
      ++n;
    }
    const double avg = n ? total / n : 0.0;
    const double raster =
        dp::squish::imageStorageBytes(rules.clipWidth, rules.clipHeight);
    table.addRow({dp::datagen::directprintSpec(bm).name,
                  std::to_string(n), dp::io::Table::num(avg, 1),
                  dp::io::Table::num(raster, 0),
                  dp::io::Table::num(raster / avg, 1)});
  }
  std::cout << table.toString();
  return 0;
}
