#!/usr/bin/env python3
"""dp-lint — repo-invariant linter for the DeePattern codebase.

Enforces the project rules that generic tools (clang-tidy, the Clang
thread-safety analysis) cannot express, because they are contracts of
THIS repo rather than of C++:

  DP001 banned-rng          src/ must draw randomness from dp::Rng only.
                            std::rand/srand, std::random_device and
                            time()-style seeding break seeded bit-exact
                            reproducibility.
  DP002 raw-sync            std::mutex / std::lock_guard /
                            std::unique_lock / std::condition_variable
                            and friends may appear only in
                            src/common/sync.hpp. Everything else uses
                            the dp::Mutex wrappers so the Clang
                            thread-safety analysis sees every lock.
  DP003 banned-flags        -march=native and -ffast-math must never
                            reappear in the build: the first breaks the
                            one-binary-any-host dispatch contract, the
                            second breaks bit-exact float determinism.
  DP004 unordered-iteration Iterating a std::unordered_* container in
                            src/ is hash-table-layout-dependent and
                            therefore platform-dependent. Output-
                            affecting paths must iterate ordered
                            containers; a deliberate order-insensitive
                            iteration is allowed with a
                            `// dp-lint: ordered` justification on the
                            same line or the line above.
  DP005 isa-confinement     Vector intrinsics (and <immintrin.h>) are
                            allowed only in *_avx2.cpp / *_avx512.cpp
                            translation units, which are the only TUs
                            built with -mavx2 / -mavx512f and only
                            entered behind the runtime cpuid dispatch.
                            AVX-512-specific surface (_mm512_*, __m512*,
                            __mmask*) is further confined to
                            *_avx512.cpp: an _avx2.cpp TU is compiled
                            without AVX-512 codegen, so a 512-bit
                            intrinsic there either fails to build or,
                            worse, silently pulls the whole TU above
                            its dispatch tier.
  DP006 raw-checkpoint-write
                            std::ofstream may not appear in src/nn/,
                            src/serve/, src/pipeline/, src/train/,
                            src/io/, examples/ or tools/: checkpoint,
                            bundle, segment, manifest and artifact
                            files must be published through
                            dp::AtomicFileWriter (write-temp + fsync +
                            atomic rename), or a crash mid-write
                            corrupts the previous good file. A
                            deliberate non-durable write is allowed
                            with `// dp-lint: non-atomic-write` on the
                            same line or the line above.
  DP007 blocking-socket-call
                            accept/accept4/recv/send inside
                            src/serve/eventloop.cpp: every socket the
                            event loop touches must be nonblocking
                            (SOCK_NONBLOCK / O_NONBLOCK), or one slow
                            peer stalls every connection on the loop
                            thread. Each call site must carry a
                            `// dp-lint: nonblocking` justification on
                            the same line or the line above stating why
                            the fd cannot block.

Usage:
  dp_lint.py [--root DIR]     scan the repository (default: cwd)
  dp_lint.py --sarif PATH     also write the findings as SARIF 2.1.0
                              (GitHub code-scanning subset)
  dp_lint.py --self-test      run the rule engine against the fixture
                              files in tests/lint/fixtures and verify
                              each detects exactly what its
                              `// dp-lint-expect:` header declares

Exit status 0 when clean, 1 on any finding (or self-test mismatch),
2 on a usage or internal error (unreadable tree, missing fixtures,
SARIF write failure).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# Exit status contract (mirrored by dp_analyze, labeled separately in
# CI): findings are a lint failure, everything else going wrong is a
# tool/usage error.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")
# Fixture files deliberately violate the rules; never scan them as repo
# code.
EXCLUDED = ("tests/lint/fixtures", "tests/analyze/fixtures")

ESCAPE_ORDERED = "dp-lint: ordered"
ESCAPE_NON_ATOMIC = "dp-lint: non-atomic-write"
ESCAPE_NONBLOCKING = "dp-lint: nonblocking"


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RE_RAW_DELIM = re.compile(r'[^\s()\\"]{0,16}$')


def _is_raw_string_open(text: str, i: int) -> bool:
    """True when the `"` at text[i] opens a raw string literal: it is
    preceded by R (optionally with a u8/u/U/L encoding prefix) that is
    not the tail of a longer identifier."""
    j = i - 1
    if j < 0 or text[j] != "R":
        return False
    j -= 1
    if j >= 1 and text[j - 1:j + 1] == "u8":
        j -= 2
    elif j >= 0 and text[j] in "uUL":
        j -= 1
    return j < 0 or not (text[j].isalnum() or text[j] == "_")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so findings keep real line numbers. Escape-hatch comments
    are matched against the ORIGINAL text, not this stripped view.

    Raw strings (`R"delim(...)delim"`) get dedicated handling: inside
    one, `"` and `\\` are ordinary characters, so the plain string
    state machine would exit early on an embedded quote (leaking
    literal content into the code view — false positives) or swallow
    real code after an odd number of embedded quotes (false
    negatives)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"' and _is_raw_string_open(text, i):
                paren = text.find("(", i + 1)
                delim = text[i + 1:paren] if paren != -1 else None
                if delim is not None and RE_RAW_DELIM.match(delim):
                    closer = ")" + delim + '"'
                    end = text.find(closer, paren + 1)
                    stop = end + len(closer) if end != -1 else n
                    for ch in text[i:stop]:
                        out.append("\n" if ch == "\n" else " ")
                    i = stop
                    continue
                # Malformed opener: fall through to the plain handler.
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def has_escape(raw_lines: list[str], line: int, escape: str) -> bool:
    """True when `escape` appears on `line` (1-based) or the line
    above it in the original (unstripped) file."""
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines) and escape in raw_lines[ln - 1]:
            return True
    return False


# --------------------------------------------------------------------------
# Rules. Each takes (relpath, raw text, stripped text) and yields
# Findings. `relpath` uses forward slashes relative to the repo root.
# --------------------------------------------------------------------------

RE_BANNED_RNG = re.compile(
    r"\bstd::rand\b|\bstd::srand\b|(?<![\w:])srand\s*\(|"
    r"\bstd::random_device\b|\bstd::time\s*\(|(?<![\w:.>])time\s*\("
)


def rule_banned_rng(relpath: str, raw: str, stripped: str):
    if not relpath.startswith("src/"):
        return
    for m in RE_BANNED_RNG.finditer(stripped):
        yield Finding(
            relpath, line_of(stripped, m.start()), "DP001",
            f"banned RNG/seed source `{m.group(0).strip()}` — src/ must "
            "use dp::Rng with an explicit seed",
        )


RE_RAW_SYNC = re.compile(
    r"\bstd::(mutex|recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)


def rule_raw_sync(relpath: str, raw: str, stripped: str):
    if relpath == "src/common/sync.hpp":
        return  # the one place the std primitives are allowed
    for m in RE_RAW_SYNC.finditer(stripped):
        yield Finding(
            relpath, line_of(stripped, m.start()), "DP002",
            f"raw `{m.group(0)}` — use dp::Mutex/LockGuard/UniqueLock/"
            "CondVar from common/sync.hpp so the thread-safety analysis "
            "sees the lock",
        )


RE_BANNED_FLAGS = re.compile(r"-march=native|-ffast-math")


def rule_banned_flags(relpath: str, raw: str, stripped: str):
    base = os.path.basename(relpath)
    if base != "CMakeLists.txt" and not base.endswith(".cmake"):
        return
    for i, line in enumerate(raw.splitlines(), start=1):
        for m in RE_BANNED_FLAGS.finditer(line):
            yield Finding(
                relpath, i, "DP003",
                f"banned compiler flag `{m.group(0)}` — breaks the "
                "portable-dispatch / bit-determinism contract",
            )


RE_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"
)


def _unordered_names(stripped: str) -> set[str]:
    """Identifiers declared with a std::unordered_* type in this file
    (handles multi-line declarations and nested template arguments)."""
    names = set()
    for m in RE_UNORDERED_DECL.finditer(stripped):
        depth, i = 1, m.end()
        while i < len(stripped) and depth > 0:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
            i += 1
        ident = re.match(r"\s*&?\s*(\w+)\s*[;={(,)]", stripped[i:])
        if ident:
            names.add(ident.group(1))
    return names


def rule_unordered_iteration(relpath: str, raw: str, stripped: str):
    if not relpath.startswith("src/"):
        return
    names = _unordered_names(stripped)
    if not names:
        return
    raw_lines = raw.splitlines()
    # Range-for over a declared unordered container, or explicit
    # begin()-family iteration on one.
    patterns = [
        re.compile(r"for\s*\([^;)]*?:\s*(\w+)\s*\)"),
        re.compile(r"\b(\w+)\s*\.\s*(?:c?r?begin)\s*\("),
    ]
    for pat in patterns:
        for m in pat.finditer(stripped):
            name = m.group(1)
            if name not in names:
                continue
            line = line_of(stripped, m.start())
            if has_escape(raw_lines, line, ESCAPE_ORDERED):
                continue
            yield Finding(
                relpath, line, "DP004",
                f"iteration over unordered container `{name}` — "
                "enumeration order is platform-dependent; use an ordered "
                "container or justify with `// dp-lint: ordered`",
            )


RE_INTRIN = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)i?d?\b|\b__mmask\d+\b|"
    r"immintrin\.h"
)
RE_AVX512_ONLY = re.compile(r"\b_mm512_\w+\s*\(|\b__m512i?d?\b|\b__mmask\d+\b")


def rule_isa_confinement(relpath: str, raw: str, stripped: str):
    base = os.path.basename(relpath)
    is_avx2_tu = base.endswith("_avx2.cpp")
    is_avx512_tu = base.endswith("_avx512.cpp")
    if is_avx512_tu:
        return  # widest tier: any intrinsic surface is in bounds
    if is_avx2_tu:
        # An _avx2.cpp TU is compiled with -mavx2 only; 512-bit surface
        # there breaks the tier contract even though generic intrinsics
        # are fine.
        for m in RE_AVX512_ONLY.finditer(stripped):
            yield Finding(
                relpath, line_of(stripped, m.start()), "DP005",
                f"AVX-512 intrinsic surface `{m.group(0).strip()}` in an "
                "*_avx2.cpp TU — 512-bit code belongs in *_avx512.cpp, "
                "the only TUs built with -mavx512f",
            )
        return
    # `#include <immintrin.h>` survives stripping (angle brackets are
    # code); the quoted-include form is blanked as a string literal, so
    # it gets its own raw-text scan below.
    for m in RE_INTRIN.finditer(stripped):
        yield Finding(
            relpath, line_of(stripped, m.start()), "DP005",
            f"vector intrinsic surface `{m.group(0).strip()}` outside a "
            "*_avx2.cpp / *_avx512.cpp TU — ISA-specific code must stay "
            "behind the runtime dispatch boundary",
        )
    for i, line in enumerate(raw.splitlines(), start=1):
        if re.search(r'#\s*include\s*"[^"]*immintrin\.h"', line):
            yield Finding(
                relpath, i, "DP005",
                "immintrin.h include outside a *_avx2.cpp / "
                "*_avx512.cpp TU",
            )


RE_OFSTREAM = re.compile(r"\bstd::ofstream\b")


def rule_raw_checkpoint_write(relpath: str, raw: str, stripped: str):
    if not relpath.startswith(("src/nn/", "src/serve/", "src/pipeline/",
                               "src/train/", "src/io/", "examples/",
                               "tools/")):
        return
    raw_lines = raw.splitlines()
    for m in RE_OFSTREAM.finditer(stripped):
        line = line_of(stripped, m.start())
        if has_escape(raw_lines, line, ESCAPE_NON_ATOMIC):
            continue
        yield Finding(
            relpath, line, "DP006",
            "raw `std::ofstream` in checkpoint/bundle code — publish "
            "through dp::AtomicFileWriter (common/atomic_file.hpp) so a "
            "crash mid-write cannot corrupt the previous good file, or "
            "justify with `// dp-lint: non-atomic-write`",
        )


RE_BLOCKING_SOCKET = re.compile(r"\b(accept4?|recv|send)\s*\(")


def rule_blocking_socket(relpath: str, raw: str, stripped: str):
    """DP007: the epoll event loop is single-threaded per fd set; any
    socket call that can block parks every connection behind one slow
    peer. Confined to eventloop.cpp, where each accept/recv/send must
    state (via the escape comment) why its fd cannot block."""
    if relpath != "src/serve/eventloop.cpp":
        return
    raw_lines = raw.splitlines()
    for m in RE_BLOCKING_SOCKET.finditer(stripped):
        line = line_of(stripped, m.start())
        if has_escape(raw_lines, line, ESCAPE_NONBLOCKING):
            continue
        yield Finding(
            relpath, line, "DP007",
            f"socket call `{m.group(1)}` in the event loop without a "
            "nonblocking justification — a blocking fd here stalls every "
            "connection on the loop thread; request SOCK_NONBLOCK/"
            "O_NONBLOCK and justify with `// dp-lint: nonblocking`",
        )


RULES = [
    rule_banned_rng,
    rule_raw_sync,
    rule_banned_flags,
    rule_unordered_iteration,
    rule_isa_confinement,
    rule_raw_checkpoint_write,
    rule_blocking_socket,
]


def lint_text(relpath: str, raw: str) -> list[Finding]:
    stripped = strip_comments_and_strings(raw)
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule(relpath, raw, stripped))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_repo_files(root: str):
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel = os.path.relpath(dirpath, root).replace(os.sep, "/")
            dirnames[:] = sorted(
                d for d in dirnames
                if not any(f"{rel}/{d}".startswith(e) for e in EXCLUDED)
            )
            for name in sorted(filenames):
                relpath = f"{rel}/{name}"
                if any(relpath.startswith(e) for e in EXCLUDED):
                    continue
                if name.endswith(SOURCE_EXTS) or name == "CMakeLists.txt" \
                        or name.endswith(".cmake"):
                    yield relpath
    # The top-level build file is outside SCAN_DIRS but carries the
    # flag invariants.
    if os.path.isfile(os.path.join(root, "CMakeLists.txt")):
        yield "CMakeLists.txt"


def scan_repo(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for relpath in iter_repo_files(root):
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            raw = fh.read()
        findings.extend(lint_text(relpath, raw))
    return findings


# --------------------------------------------------------------------------
# Self-test over the fixture corpus.
# --------------------------------------------------------------------------

RE_EXPECT = re.compile(r"//\s*dp-lint-expect:\s*(.*)")
RE_PATH = re.compile(r"//\s*dp-lint-path:\s*(\S+)")


def self_test(root: str) -> int:
    fixture_dir = os.path.join(root, "tests", "lint", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"dp-lint: no fixture dir at {fixture_dir}", file=sys.stderr)
        return EXIT_ERROR
    failures = 0
    names = sorted(os.listdir(fixture_dir))
    for name in names:
        path = os.path.join(fixture_dir, name)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        mpath = RE_PATH.search(raw)
        mexpect = RE_EXPECT.search(raw)
        if not mpath or not mexpect:
            print(f"FAIL {name}: missing dp-lint-path / dp-lint-expect "
                  "header")
            failures += 1
            continue
        expected = sorted(mexpect.group(1).split())
        if expected == ["none"]:
            expected = []
        got = sorted(f.rule for f in lint_text(mpath.group(1), raw))
        if got == expected:
            print(f"ok   {name}: {' '.join(got) or 'clean'}")
        else:
            print(f"FAIL {name}: expected [{' '.join(expected)}] "
                  f"got [{' '.join(got)}]")
            for f in lint_text(mpath.group(1), raw):
                print(f"       {f}")
            failures += 1
    if failures:
        print(f"dp-lint self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"dp-lint self-test: {len(names)} fixture(s) ok")
    return 0


RULE_SUMMARIES = {
    "DP001": "src/ must draw randomness from dp::Rng only",
    "DP002": "raw std:: sync primitives outside src/common/sync.hpp",
    "DP003": "-march=native / -ffast-math are banned from the build",
    "DP004": "unordered-container iteration is platform-dependent",
    "DP005": "vector intrinsics confined to *_avx2.cpp / *_avx512.cpp",
    "DP006": "checkpoint/bundle/artifact writes must use dp::AtomicFileWriter",
    "DP007": "event-loop socket calls must be nonblocking and justified",
}


def write_sarif(path: str, findings: list[Finding]) -> None:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from dp_analyze import sarif
    sarif.write(path, sarif.build("dp-lint", "1.0", RULE_SUMMARIES,
                                  findings))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the rule engine against the fixtures")
    ap.add_argument("--sarif", metavar="PATH",
                    help="also write the findings as SARIF 2.1.0")
    args = ap.parse_args()
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"dp-lint: no such directory: {root}", file=sys.stderr)
        return EXIT_ERROR
    if args.self_test:
        return self_test(root)
    try:
        findings = scan_repo(root)
    except OSError as e:
        print(f"dp-lint: cannot scan {root}: {e}", file=sys.stderr)
        return EXIT_ERROR
    for f in findings:
        print(f)
    if args.sarif:
        try:
            write_sarif(args.sarif, findings)
        except (ImportError, OSError) as e:
            print(f"dp-lint: cannot write SARIF: {e}", file=sys.stderr)
            return EXIT_ERROR
    if findings:
        print(f"dp-lint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    print("dp-lint: clean")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
