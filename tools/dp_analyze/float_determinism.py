"""DPA104 — float-determinism.

The determinism contract (src/common/thread_pool.hpp): parallelFor
partitions [0, n) into fixed chunks independent of DP_THREADS, workers
write per-chunk state, and any floating-point fold over chunk results
happens serially in ascending chunk order AFTER the parallel section.

Violations flagged here:

  * a floating-point compound assignment (`+=` etc.) inside a
    parallelFor lambda whose target is captured from the enclosing
    scope — the fold order then depends on thread interleaving;
  * std::accumulate over an unordered container — the fold order
    depends on hash-table layout, which varies with insertion history;
  * a range-for over an unordered container whose body folds into a
    float for the same reason.

Variables declared inside the lambda are per-chunk locals and fold
deterministically; integer reductions are order-insensitive. Both are
exempt by construction.
"""

from __future__ import annotations

from .model import FileModel, Finding

RULE = "DPA104"


def check(models: list[FileModel]):
    findings: list[Finding] = []
    for fm in models:
        for f in fm.funcs:
            for r in f.reduces:
                if r.in_parallel and r.captured and r.is_float:
                    findings.append(Finding(
                        RULE, fm.path, r.line,
                        f"float reduction '{r.lhs} {r.op}= ...' into a "
                        "captured variable inside a parallelFor lambda "
                        f"in '{f.display}': fold order depends on "
                        "DP_THREADS — write per-chunk partials and "
                        "fold serially in ascending chunk order"))
            for a in f.accumulates:
                if a.container_unordered:
                    findings.append(Finding(
                        RULE, fm.path, a.line,
                        f"std::accumulate over unordered container "
                        f"'{a.container}' in '{f.display}': fold order "
                        "depends on hash-table layout — iterate a "
                        "sorted view or keep an ordered running total"))
            for u in f.unordered_folds:
                findings.append(Finding(
                    RULE, fm.path, u.line,
                    f"float fold over unordered container "
                    f"'{u.container}' in '{f.display}': iteration "
                    "order depends on hash-table layout — sort keys "
                    "first or accumulate at insertion time"))
    return findings
