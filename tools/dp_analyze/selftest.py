"""Self-test over seeded-defect fixtures (mirrors the dp_lint
doctrine).

Each tests/analyze/fixtures/*.cpp declares its expectations in header
comments:

  // dp-analyze-expect: DPA103        this file must fire DPA103
  // dp-analyze-expect: DPA101 DPA104 (repeatable / space-separated)
  // dp-analyze-path: src/serve/x.cpp analyze the file as if it lived
                                      at this repo path (DPA102 and
                                      friends are path-scoped)

A fixture with no expect header must analyze clean. The self-test
fails if any expected rule does not fire, or any unexpected rule
fires. Fixtures always run through the built-in frontend so the ctest
`lint` label needs nothing beyond python3; the libclang frontend is
exercised against the real tree in CI.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import fault_sites, float_determinism, frontend_lite, \
    hot_alloc, lock_order

RE_EXPECT = re.compile(r"//\s*dp-analyze-expect:\s*([A-Z0-9 ]+)")
RE_PATH = re.compile(r"//\s*dp-analyze-path:\s*(\S+)")

FIXTURE_DIR = Path("tests") / "analyze" / "fixtures"


def analyze_single(rel: str, text: str):
    """All four checkers over one translation unit in fixture mode: no
    lock_order.json drift compare, no chaos-suite parity."""
    aux = frontend_lite.Aux()
    models = [frontend_lite.parse_source(rel, text, aux)]
    frontend_lite.resolve_locks(models, aux)
    findings = []
    f101, _ = lock_order.check(models, committed_json=None)
    findings += f101
    f102, _ = fault_sites.check(models, root=None, chaos=False)
    findings += f102
    findings += hot_alloc.check(models)
    findings += float_determinism.check(models)
    return frontend_lite.filter_allowed(findings, aux.sources)


def run(root: Path) -> int:
    fdir = root / FIXTURE_DIR
    fixtures = sorted(fdir.glob("*.cpp"))
    if not fixtures:
        print(f"dp-analyze self-test: no fixtures in {fdir}")
        return 1
    failures = 0
    fired: set[str] = set()
    for p in fixtures:
        text = p.read_text(encoding="utf-8")
        expected: set[str] = set()
        for m in RE_EXPECT.finditer(text):
            expected |= set(m.group(1).split())
        pm = RE_PATH.search(text)
        rel = pm.group(1) if pm else \
            p.relative_to(root).as_posix()
        findings = analyze_single(rel, text)
        got = {f.rule for f in findings}
        fired |= got
        if got == expected:
            print(f"PASS {p.name}: "
                  + (" ".join(sorted(got)) if got else "clean"))
            continue
        failures += 1
        print(f"FAIL {p.name}: expected "
              f"[{' '.join(sorted(expected)) or 'clean'}], got "
              f"[{' '.join(sorted(got)) or 'clean'}]")
        for f in findings:
            print(f"  {f}")
    total = len(fixtures)
    print(f"dp-analyze self-test: {total - failures}/{total} "
          "fixtures ok")
    required = {"DPA101", "DPA102", "DPA103", "DPA104"}
    missing = required - fired
    if missing:
        failures += 1
        print("FAIL coverage: no fixture fired "
              + " ".join(sorted(missing)))
    return 1 if failures else 0
