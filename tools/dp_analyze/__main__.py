"""dp-analyze CLI.

  python3 tools/dp_analyze [--root DIR] [--frontend auto|lite|clang]
                           [--compdb PATH] [--sarif PATH]
                           [--emit-lock-order PATH] [--self-test]

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage or
internal error. CI treats 1 as "contract violations" and 2 as "tool
broke" — see .github/workflows/ci.yml.
"""

import os
import sys

if __package__ in (None, ""):  # executed as `python3 tools/dp_analyze`
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    import dp_analyze.__main__ as _pkg_main
    sys.exit(_pkg_main.main(sys.argv[1:]))

import argparse
import traceback
from pathlib import Path

from . import RULES, __version__, fault_sites, float_determinism, \
    frontend_lite, hot_alloc, lock_order, sarif, selftest

LOCK_ORDER_JSON = "tools/lock_order.json"


def _load_models(root: Path, frontend: str, compdb: str | None):
    if frontend == "lite":
        return frontend_lite.parse_tree(root)
    try:
        from . import frontend_clang
        return frontend_clang.parse_tree(root, compdb)
    except ImportError as exc:
        if frontend == "clang":
            raise RuntimeError(
                f"--frontend=clang requested but libclang is "
                f"unavailable: {exc}") from exc
        print("dp-analyze: libclang unavailable "
              f"({exc.__class__.__name__}); using built-in frontend",
              file=sys.stderr)
        return frontend_lite.parse_tree(root)
    except Exception as exc:  # noqa: BLE001
        if frontend == "clang":
            raise
        print(f"dp-analyze: libclang frontend failed ({exc}); "
              "falling back to built-in frontend", file=sys.stderr)
        return frontend_lite.parse_tree(root)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="dp_analyze",
        description="AST-level contract analyzer for the DeePattern "
                    "codebase (DPA101-DPA104).")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this "
                         "package)")
    ap.add_argument("--frontend", choices=("auto", "lite", "clang"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (file or directory) "
                         "for the libclang frontend")
    ap.add_argument("--sarif", metavar="PATH", default=None,
                    help="also write findings as SARIF 2.1.0")
    ap.add_argument("--emit-lock-order", metavar="PATH", default=None,
                    help="write the DPA101 edge list here and skip "
                         "the staleness compare")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-defect fixtures instead of "
                         "the tree")
    ap.add_argument("--version", action="version",
                    version=f"dp-analyze {__version__}")
    args = ap.parse_args(argv)

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parent.parent.parent
    if not (root / "src").is_dir() and not args.self_test:
        print(f"dp-analyze: {root} has no src/ directory",
              file=sys.stderr)
        return 2

    try:
        if args.self_test:
            return selftest.run(root)

        models, aux = _load_models(root, args.frontend, args.compdb)

        committed = None
        if args.emit_lock_order is None:
            lp = root / LOCK_ORDER_JSON
            committed = lp.read_text(encoding="utf-8") \
                if lp.is_file() else ""
        findings, generated = lock_order.check(
            models, committed_json=committed)
        if args.emit_lock_order:
            Path(args.emit_lock_order).write_text(generated,
                                                  encoding="utf-8")
            print(f"dp-analyze: wrote {args.emit_lock_order}")
        f102, _inventory = fault_sites.check(models, root=root)
        findings += f102
        findings += hot_alloc.check(models)
        findings += float_determinism.check(models)
        findings = frontend_lite.filter_allowed(findings, aux.sources)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))

        for f in findings:
            print(f)
        if args.sarif:
            sarif.write(args.sarif,
                        sarif.build("dp-analyze", __version__, RULES,
                                    findings))
        n_funcs = sum(len(fm.funcs) for fm in models)
        print(f"dp-analyze: {len(models)} files, {n_funcs} functions, "
              f"{len(findings)} finding(s)", file=sys.stderr)
        return 1 if findings else 0
    except Exception:  # noqa: BLE001 — internal error => exit 2
        traceback.print_exc()
        print("dp-analyze: internal error (exit 2)", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
