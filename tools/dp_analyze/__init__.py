"""dp-analyze — AST-level contract analyzer for the DeePattern codebase.

Four semantic checkers over the C++ tree, each enforcing a contract
that tools/dp_lint.py's token-level rules cannot see (DESIGN.md §15):

  DPA101 lock-order          Extracts the global dp::Mutex acquisition
                             graph (LockGuard/UniqueLock sites, wait-
                             while-holding via CondVar, lock-holding
                             calls followed through the call graph),
                             detects cycles — including cross-TU
                             inversions — and emits the lock→lock edge
                             list as tools/lock_order.json, the
                             generated source of DESIGN.md §10's map.
  DPA102 fault-site-coverage Inventories every failure-capable
                             syscall/libc call reachable in src/nn,
                             src/serve, src/pipeline and
                             src/common/atomic_file.cpp, verifies each
                             is dominated by a named dp::FaultSite, and
                             cross-checks the site inventory against
                             the sites exercised by the chaos suites —
                             a new I/O path without fault injection AND
                             chaos coverage fails CI.
  DPA103 hot-path-allocation No new/malloc/reallocating container ops
                             in functions marked `// dp-analyze: hot`,
                             following the call graph one level down.
                             `// dp-analyze: hot scratch=<param>`
                             exempts amortized thread-local scratch
                             reuse; allocations inside throw
                             statements are error exits, not hot-loop
                             work, and are exempt.
  DPA104 float-determinism   Flags floating-point compound reductions
                             into variables captured by parallelFor
                             lambdas (folding order would depend on
                             DP_THREADS) and std::accumulate/range-for
                             float sums over unordered containers
                             (folding order would depend on hash-table
                             layout).

Frontends: libclang (pinned clang-18 wheel in CI, driven off
compile_commands.json) when importable, with a dependency-free
built-in C++ model extractor as the fallback so local runs and the
ctest `lint` label need nothing beyond python3. Both produce the same
translation-unit model (tools/dp_analyze/model.py); the checkers are
frontend-agnostic.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

__version__ = "1.0"

RULES = {
    "DPA101": "lock-order",
    "DPA102": "fault-site-coverage",
    "DPA103": "hot-path-allocation",
    "DPA104": "float-determinism",
}
