"""libclang frontend (pinned clang-18 wheel in CI).

Parses each translation unit with libclang, driven off
compile_commands.json, and uses the AST to make function-boundary
discovery exact: every function/method definition the cursor walk
finds that the built-in scan missed (exotic declarator syntax,
macro-heavy headers) is added to the model, with events extracted by
the same extractor the lite frontend uses — so the two frontends agree
on event semantics by construction and differ only in coverage, never
in meaning.

Importing this module raises ImportError when the `clang` bindings or
a loadable libclang are absent; the driver falls back to the built-in
frontend (a hard `--frontend=clang` makes that a usage error instead).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import clang.cindex as ci  # noqa: F401  (ImportError => fallback)

from . import frontend_lite
from .model import Func

_DEF_KINDS = None


def _def_kinds():
    global _DEF_KINDS
    if _DEF_KINDS is None:
        K = ci.CursorKind
        _DEF_KINDS = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                      K.DESTRUCTOR, K.FUNCTION_TEMPLATE}
    return _DEF_KINDS


def _load_compdb(compdb: str | None) -> dict[str, list[str]]:
    """abs file path -> filtered compile args (-I/-D/-std/-isystem)."""
    if not compdb:
        return {}
    p = Path(compdb)
    if p.is_dir():
        p = p / "compile_commands.json"
    if not p.is_file():
        return {}
    out: dict[str, list[str]] = {}
    for entry in json.loads(p.read_text(encoding="utf-8")):
        raw = entry.get("arguments")
        if raw is None:
            raw = entry.get("command", "").split()
        args: list[str] = []
        take_next = False
        for a in raw:
            if take_next:
                args.append(a)
                take_next = False
            elif a in ("-I", "-isystem", "-D"):
                args.append(a)
                take_next = True
            elif a.startswith(("-I", "-D", "-std=", "-isystem")):
                args.append(a)
        directory = entry.get("directory", ".")
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(directory) / f
        out[str(f.resolve())] = args
    return out


def _lite_covers(fm, name: str, line: int, end_line: int) -> bool:
    return any(f.name == name and f.line <= end_line
               and line <= f.end_line for f in fm.funcs)


def parse_tree(root: Path, compdb: str | None = None, paths=None):
    index = ci.Index.create()
    args_for = _load_compdb(compdb)
    default_args = ["-x", "c++", "-std=c++17", "-I", str(root / "src")]
    aux = frontend_lite.Aux()
    models = []
    files = (sorted(paths) if paths is not None
             else list(frontend_lite.iter_source_files(root)))
    refined = 0
    for p in files:
        rp = p.resolve()
        rel = rp.relative_to(root.resolve()).as_posix() \
            if rp.is_relative_to(root.resolve()) else p.as_posix()
        text = p.read_text(encoding="utf-8", errors="replace")
        fm, parser = frontend_lite.parse_source_ex(rel, text, aux)
        models.append(fm)
        try:
            tu = index.parse(str(rp),
                             args=args_for.get(str(rp), default_args))
            refined += _refine(fm, parser, tu, str(rp))
        except Exception as exc:  # noqa: BLE001 — per-file best effort
            print(f"dp-analyze: libclang failed on {rel}: {exc}; "
                  "using built-in scan for this file",
                  file=sys.stderr)
    if refined:
        print(f"dp-analyze: libclang recovered {refined} function(s) "
              "missed by the built-in scan", file=sys.stderr)
    frontend_lite.resolve_locks(models, aux)
    return models, aux


def _refine(fm, parser, tu, abs_path: str) -> int:
    """Adds clang-discovered definitions the lite scan missed."""
    added = 0
    stripped = parser.stripped
    # offset of the start of each 1-based line
    line_off = [0]
    for i, c in enumerate(stripped):
        if c == "\n":
            line_off.append(i + 1)

    def walk(cursor, cls: str | None, ns: list[str]):
        nonlocal added
        for ch in cursor.get_children():
            loc_file = ch.location.file
            in_file = loc_file is not None and \
                str(Path(loc_file.name).resolve()) == abs_path
            K = ci.CursorKind
            if ch.kind == K.NAMESPACE:
                walk(ch, None, ns + [ch.spelling or "<anon>"])
                continue
            if ch.kind in (K.CLASS_DECL, K.STRUCT_DECL,
                           K.CLASS_TEMPLATE, K.UNION_DECL):
                walk(ch, ch.spelling or "<anon>", ns)
                continue
            if ch.kind not in _def_kinds() or not ch.is_definition() \
                    or not in_file:
                continue
            start = ch.extent.start.line
            end = ch.extent.end.line
            name = ch.spelling
            if ch.kind == K.CXX_METHOD or ch.kind == K.CONSTRUCTOR \
                    or ch.kind == K.DESTRUCTOR:
                parent = ch.semantic_parent
                pcls = parent.spelling if parent is not None else cls
            else:
                pcls = cls
            if _lite_covers(fm, name, start, end):
                continue
            if start > len(line_off) or end > len(line_off):
                continue
            lo = line_off[start - 1]
            hi = line_off[end - 1] if end <= len(line_off) \
                else len(stripped)
            body_open = stripped.find("{", lo, hi)
            if body_open == -1:
                continue
            body_close = parser.braces.get(body_open, hi)
            fn = Func(name=name, cls=pcls, ns="::".join(ns),
                      file=fm.path, line=start, end_line=end)
            parser._extract_events(fn, body_open + 1, body_close, "")
            fm.funcs.append(fn)
            added += 1
    walk(tu.cursor, None, [])
    parser._attach_annotations()
    return added
