"""Minimal SARIF 2.1.0 writer shared by dp_analyze and dp_lint.

Standalone on purpose (no package-relative imports): dp_lint.py
imports it as `from dp_analyze import sarif` with tools/ on sys.path.
Emits the subset GitHub code scanning consumes: one run, a driver with
rule metadata, and one result per finding with a physical location.
"""

from __future__ import annotations

import json


def build(tool_name: str, version: str, rules: dict[str, str],
          findings) -> dict:
    """`findings` is an iterable of objects with .rule, .path, .line
    and .message attributes (dp_analyze Finding / dp_lint Finding)."""
    results = []
    used_rules = sorted({f.rule for f in findings})
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(f.line))},
                },
            }],
        })
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": version,
                    "informationUri":
                        "https://github.com/paper-repo-growth",
                    "rules": [
                        {
                            "id": rid,
                            "shortDescription": {
                                "text": rules.get(rid, rid)},
                        }
                        for rid in used_rules
                    ],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def write(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
