"""Translation-unit model shared by the dp-analyze frontends.

Both frontends (libclang and the built-in fallback) reduce each C++
file to the same small fact schema; the checkers never look at source
text again. Facts carry 1-based line numbers in the file they came
from.

Annotation grammar (comments in the original source, scanned by the
frontends):

  // dp-analyze: hot                  function below (or on this line)
                                      is a hot path: DPA103 forbids
                                      allocation in it and one call
                                      level down.
  // dp-analyze: hot scratch=<name>   same, but reallocating container
                                      ops on members of parameter /
                                      object `<name>` are exempt —
                                      the amortized thread_local
                                      scratch idiom (DESIGN.md §14).
  // dp-analyze: cold                 function below is an error/slow
                                      path; DPA103 does not descend
                                      into it from hot callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Failure-capable syscalls/libc calls DPA102 inventories (the `::name(`
# idiom). Deliberately excludes fail-fast startup calls (socket, bind,
# listen), best-effort teardown (close, unlink) and metadata reads
# (stat, fstat, lseek): injecting faults there either aborts the
# process by design or is absorbed without a recovery path to test.
FAILURE_CAPABLE = (
    "open", "openat", "read", "pread", "readv", "write", "pwrite",
    "writev", "rename", "renameat", "fsync", "fdatasync", "accept",
    "accept4", "recv", "recvfrom", "recvmsg", "send", "sendto",
    "sendmsg", "connect", "epoll_wait", "epoll_pwait",
)


@dataclass
class Acquire:
    """A lock acquisition (RAII guard) and the scope it covers."""
    line: int
    lock: str            # canonical lock id, e.g. "serve::Batcher::mutex_"
    expr: str            # source expression, e.g. "state_->mutex"
    var: str             # guard variable name
    via: str             # "LockGuard" | "UniqueLock"
    release_line: int    # line of the end of the guard's scope


@dataclass
class Wait:
    """CondVar::wait(lock) — the waiting thread sleeps holding every
    OTHER lock it has acquired."""
    line: int
    cv: str
    lock: str            # lock id of the UniqueLock argument ("?" unknown)


@dataclass
class Call:
    line: int
    callee: str          # base name, e.g. "countShed"
    obj: str | None      # receiver expression ("metrics_") or None
    in_parallel: bool = False


@dataclass
class Syscall:
    line: int
    name: str


@dataclass
class SiteDecl:
    line: int
    var: str
    site: str            # the site's string name


@dataclass
class SiteCheck:
    line: int
    var: str
    site: str            # resolved site name, "?" when unresolvable


@dataclass
class Alloc:
    line: int
    what: str            # "new", "malloc", "push_back", ...
    obj: str | None      # receiver expression for member ops
    in_throw: bool = False


@dataclass
class Reduce:
    """Compound assignment `lhs op= ...` on a bare scalar identifier."""
    line: int
    lhs: str
    op: str
    is_float: bool       # LHS resolved to float/double
    captured: bool       # declared outside the enclosing lambda
    in_parallel: bool    # inside a parallelFor body


@dataclass
class Accumulate:
    """std::accumulate over a container."""
    line: int
    container: str
    container_unordered: bool


@dataclass
class UnorderedFloatFold:
    """Range-for over an unordered container whose body compound-
    assigns a float."""
    line: int
    container: str


@dataclass
class Func:
    name: str            # base name, e.g. "submit"
    cls: str | None      # enclosing class ("Batcher") or None
    ns: str              # namespace path, e.g. "dp::serve"
    file: str            # repo-relative path
    line: int
    end_line: int
    hot: bool = False
    cold: bool = False
    scratch: set[str] = field(default_factory=set)
    acquires: list[Acquire] = field(default_factory=list)
    waits: list[Wait] = field(default_factory=list)
    calls: list[Call] = field(default_factory=list)
    syscalls: list[Syscall] = field(default_factory=list)
    site_decls: list[SiteDecl] = field(default_factory=list)
    site_checks: list[SiteCheck] = field(default_factory=list)
    allocs: list[Alloc] = field(default_factory=list)
    reduces: list[Reduce] = field(default_factory=list)
    accumulates: list[Accumulate] = field(default_factory=list)
    unordered_folds: list[UnorderedFloatFold] = field(
        default_factory=list)

    @property
    def display(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def held_at(self, line: int) -> list[Acquire]:
        """Acquisitions whose guard scope covers `line` (excluding an
        acquisition made on `line` itself)."""
        return [a for a in self.acquires
                if a.line < line <= a.release_line]


@dataclass
class FileModel:
    path: str            # repo-relative, forward slashes
    funcs: list[Func] = field(default_factory=list)


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Index:
    """Cross-file lookups the checkers share."""

    def __init__(self, files: list[FileModel]):
        self.files = files
        self.by_name: dict[str, list[Func]] = {}
        for fm in files:
            for fn in fm.funcs:
                self.by_name.setdefault(fn.name, []).append(fn)

    def resolve(self, call: Call, caller: Func) -> list[Func]:
        """Candidate definitions for a call. Prefers an exact match in
        the caller's class, then a unique global name match; ambiguous
        names resolve to every candidate (checkers treat the union
        conservatively)."""
        cands = self.by_name.get(call.callee, [])
        if not cands:
            return []
        if call.obj in (None, "this") and caller.cls:
            same = [f for f in cands if f.cls == caller.cls]
            if same:
                return same
        return cands
