"""Lexical utilities shared by the dp-analyze frontends.

The stripper is the same doctrine as tools/dp_lint.py's (blank out
comments and string/char literals while preserving line structure so
offsets map to real line numbers), extended with C++ raw string
literal support: `R"delim(...)delim"` bodies are blanked wholesale —
an embedded `std::mutex` or intrinsic name inside a raw string is
data, not code, and an unterminated-looking quote inside one must not
desynchronize the lexer for the rest of the file.
"""

from __future__ import annotations

import re

# Optional encoding prefix before R"..." — u8R"(x)" etc.
_RAW_PREFIX = re.compile(r'(?:u8|[uUL])?R$')


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals (raw strings included),
    preserving line structure. Annotation comments are matched against
    the ORIGINAL text, never this stripped view."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? Look behind for R / u8R / uR / UR
                # / LR immediately preceding the quote, itself not part
                # of a longer identifier (operator"" or WIDTH_R would
                # not be a raw-string prefix).
                j = i
                while j > 0 and text[j - 1].isalnum():
                    j -= 1
                prefix = text[j:i]
                is_ident_tail = j > 0 and (text[j - 1] == "_"
                                           or text[j - 1].isalnum())
                if prefix and not is_ident_tail \
                        and _RAW_PREFIX.match(prefix):
                    end = _skip_raw_string(text, i)
                    for k in range(i, min(end, n)):
                        out.append("\n" if text[k] == "\n" else " ")
                    i = end
                    continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                if i > 0 and text[i - 1].isdigit() and nxt.isalnum():
                    out.append(" ")
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def _skip_raw_string(text: str, quote: int) -> int:
    """`quote` indexes the opening '"' of a raw string literal.
    Returns the offset one past the closing quote (or end of text for
    an unterminated literal)."""
    n = len(text)
    i = quote + 1
    d0 = i
    while i < n and text[i] not in "(\\ \t\n":
        i += 1
    if i >= n or text[i] != "(":
        # Malformed raw literal; treat as an ordinary string from the
        # quote on so the lexer cannot run away.
        return quote + 1
    delim = text[d0:i]
    closer = ")" + delim + '"'
    end = text.find(closer, i + 1)
    if end == -1:
        return n
    return end + len(closer)


def line_of(text: str, offset: int) -> int:
    """1-based line number of `offset` in `text`."""
    return text.count("\n", 0, offset) + 1


def build_brace_index(stripped: str) -> dict[int, int]:
    """Maps each '{' offset to its matching '}' offset (and vice
    versa) over the stripped text. Unbalanced braces map to the end of
    the text."""
    match: dict[int, int] = {}
    stack: list[int] = []
    for i, c in enumerate(stripped):
        if c == "{":
            stack.append(i)
        elif c == "}":
            if stack:
                o = stack.pop()
                match[o] = i
                match[i] = o
    end = len(stripped)
    for o in stack:
        match[o] = end
    return match


def match_paren(stripped: str, open_pos: int) -> int:
    """Offset of the ')' matching the '(' at `open_pos` (angle-bracket
    agnostic; parens only). Returns len(stripped) when unbalanced."""
    depth = 0
    for i in range(open_pos, len(stripped)):
        c = stripped[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(stripped)


def enclosing_scope_end(brace_index: dict[int, int], stripped: str,
                        offset: int) -> int:
    """Offset of the '}' closing the innermost scope containing
    `offset`."""
    best = len(stripped)
    for o, c in brace_index.items():
        if stripped[o] != "{":
            continue
        if o < offset < c < best:
            best = c
    return best
