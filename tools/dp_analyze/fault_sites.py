"""DPA102 — fault-site coverage.

Two contracts over src/nn, src/serve, src/pipeline, src/train and
src/common/atomic_file.cpp:

1. Domination: every failure-capable syscall (model.FAILURE_CAPABLE)
   must sit in a function that consults a named dp::FaultSite
   (shouldFail()/orThrow()) — the chaos hook covering that function's
   I/O failure behavior — or be reachable only from such functions
   (computed as a fixpoint over the in-model call graph; a function
   with no in-model caller counts as an entry point and must guard
   itself).

2. Chaos parity: the set of FaultSite names declared in the scoped
   sources must equal the set of site names armed by the chaos suites
   (CHAOS_FILES). A site that chaos never arms is untested recovery
   code; an armed name no source declares is a dead knob. Drift in
   either direction is a finding.
"""

from __future__ import annotations

import re
from pathlib import Path

from .model import FileModel, Finding, Index

RULE = "DPA102"

SCOPE_PREFIXES = ("src/nn/", "src/serve/", "src/pipeline/", "src/train/")
SCOPE_FILES = ("src/common/atomic_file.cpp",)

CHAOS_FILES = (
    "tests/fault_test.cpp",
    "tests/pipeline_test.cpp",
    "tests/eventloop_test.cpp",
    "tests/train_test.cpp",
)

SITE_NAME = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+")
# Dotted strings in test files that are file names, not site names.
_NOT_SITES = (".json", ".bin", ".txt", ".md", ".csv", ".cpp", ".hpp",
              ".log", ".dat", ".tmp", ".gz")
_RE_STRING = re.compile(r'"((?:[^"\\\n]|\\.)*)"')


def in_scope(rel: str) -> bool:
    return rel.startswith(SCOPE_PREFIXES) or rel in SCOPE_FILES


def _looks_like_site(name: str) -> bool:
    if not SITE_NAME.fullmatch(name):
        return False
    if name.startswith("t."):
        return False  # test-local sites by convention
    return not name.endswith(_NOT_SITES)


def armed_sites(root: Path, chaos_files=CHAOS_FILES):
    """Site names armed by the chaos suites: every string literal that
    parses as one-or-more `site[:seed[:rate]]` specs of site-name
    shape. Site-list arrays put literals on lines of their own, so no
    arm()-proximity filter — the `t.` test-local prefix and the
    file-extension blocklist do the disambiguation."""
    armed: set[str] = set()
    missing: list[str] = []
    for rel in chaos_files:
        p = root / rel
        if not p.is_file():
            missing.append(rel)
            continue
        text = p.read_text(encoding="utf-8", errors="replace")
        for m in _RE_STRING.finditer(text):
            for field in re.split(r"[,;\s]+", m.group(1)):
                name = field.split(":")[0]
                if _looks_like_site(name):
                    armed.add(name)
    return armed, missing


def check(models: list[FileModel], root: Path | None = None,
          chaos: bool = True):
    findings: list[Finding] = []
    scoped = [fm for fm in models if in_scope(fm.path)]
    index = Index(models)

    # --- 1. domination ----------------------------------------------
    guarded: dict[int, bool] = {}
    all_funcs = [f for fm in models for f in fm.funcs]
    for f in all_funcs:
        guarded[id(f)] = bool(f.site_checks)
    # callers[id(callee)] -> list of caller Funcs
    callers: dict[int, list] = {}
    for f in all_funcs:
        for c in f.calls:
            for g in index.resolve(c, f):
                callers.setdefault(id(g), []).append(f)
    changed = True
    while changed:
        changed = False
        for f in all_funcs:
            if guarded[id(f)]:
                continue
            cs = callers.get(id(f))
            if cs and all(guarded[id(g)] for g in cs):
                guarded[id(f)] = True
                changed = True

    for fm in scoped:
        for f in fm.funcs:
            if guarded[id(f)]:
                continue
            for sc in f.syscalls:
                findings.append(Finding(
                    RULE, fm.path, sc.line,
                    f"::{sc.name}() in '{f.display}' has no fault-site "
                    "coverage: the function consults no dp::FaultSite "
                    "and is reachable outside fault-guarded callers — "
                    "add a named FaultSite so chaos suites can inject "
                    "this failure"))

    # --- 2. chaos parity --------------------------------------------
    inventory = {d.site for fm in scoped for f in fm.funcs
                 for d in f.site_decls if d.site != "?"}
    if chaos and root is not None:
        armed, missing = armed_sites(root)
        for rel in missing:
            findings.append(Finding(
                RULE, rel, 1, "chaos suite file missing"))
        for name in sorted(inventory - armed):
            findings.append(Finding(
                RULE, _decl_site(scoped, name), _decl_line(scoped, name),
                f"fault site '{name}' is declared but never armed by "
                "the chaos suites (" + ", ".join(CHAOS_FILES) + ") — "
                "its recovery path is untested"))
        for name in sorted(armed - inventory):
            findings.append(Finding(
                RULE, CHAOS_FILES[0], 1,
                f"chaos suites arm '{name}' but no source in scope "
                "declares it — stale or misspelled site name"))
    return findings, sorted(inventory)


def _decl_site(scoped, name: str) -> str:
    for fm in scoped:
        for f in fm.funcs:
            for d in f.site_decls:
                if d.site == name:
                    return fm.path
    return "src"


def _decl_line(scoped, name: str) -> int:
    for fm in scoped:
        for f in fm.funcs:
            for d in f.site_decls:
                if d.site == name:
                    return d.line
    return 1
