"""DPA103 — hot-path allocation.

Functions marked `// dp-analyze: hot` must not allocate: no `new`, no
malloc family, no reallocating container operation, no container
constructed with contents. The check follows the call graph one level
down into callees defined in the repo (callees marked
`// dp-analyze: cold` are sanctioned error/slow paths and are skipped;
callees marked hot are checked in their own right, not re-reported).

Exemptions:
  * allocations inside `throw` statements — error exits, not hot-loop
    work;
  * container ops whose receiver chain is rooted at a name listed in
    the function's `hot scratch=<name>` annotation — the amortized
    thread_local scratch idiom (capacity reuse after warmup).

Call-graph descent is deliberately conservative: only calls with no
receiver (or `this`) are followed, so `v.clear()` on a local vector
cannot be confused with an unrelated repo class that happens to define
`clear`.
"""

from __future__ import annotations

from .model import Call, FileModel, Finding, Func, Index

RULE = "DPA103"


def _report(f: Func, via: tuple[Func, Call] | None,
            findings: list[Finding], seen: set) -> None:
    for a in f.allocs:
        if a.in_throw:
            continue
        if a.obj is not None and a.obj in f.scratch:
            continue
        key = (f.file, a.line)
        if key in seen:
            continue
        seen.add(key)
        where = f"allocation ({a.what}"
        if a.obj:
            where += f" on '{a.obj}'"
        where += ")"
        if via is None:
            findings.append(Finding(
                RULE, f.file, a.line,
                f"{where} in hot function '{f.display}' — hot paths "
                "must reuse capacity (see the scratch= annotation "
                "grammar in DESIGN.md §15)"))
        else:
            caller, call = via
            findings.append(Finding(
                RULE, f.file, a.line,
                f"{where} in '{f.display}', called from hot "
                f"'{caller.display}' ({caller.file}:{call.line}) — "
                "hoist the buffer or mark the callee "
                "`// dp-analyze: cold` if this is an error path"))


def check(models: list[FileModel]):
    index = Index(models)
    findings: list[Finding] = []
    seen: set = set()
    for fm in models:
        for f in fm.funcs:
            if not f.hot:
                continue
            _report(f, None, findings, seen)
            for c in f.calls:
                if c.obj not in (None, "this"):
                    continue
                for g in index.resolve(c, f):
                    if g.hot or g.cold or g is f:
                        continue
                    _report(g, (f, c), findings, seen)
    return findings
