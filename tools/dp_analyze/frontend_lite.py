"""Built-in dependency-free frontend.

Reduces C++ sources to the model in model.py with a recursive-descent
scan over comment/string-stripped text: namespace / class / function
block classification from the text preceding each top-level `{`, then
regex event extraction over function bodies. This frontend carries
every local run and the ctest `lint` label; the libclang frontend
(frontend_clang.py) reuses its event extractor and only improves
function-boundary discovery.

Known, documented limits (DESIGN.md §15): no template instantiation,
overload resolution is name-based, operator overloads other than
`operator<sym>` definitions are skipped, and preprocessor conditionals
are assumed brace-balanced per branch. The seeded fixtures under
tests/analyze/fixtures stay within this dialect on purpose.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import lex
from .model import (Acquire, Accumulate, Alloc, Call, FAILURE_CAPABLE,
                    FileModel, Func, Reduce, SiteCheck, SiteDecl,
                    Syscall, UnorderedFloatFold, Wait)

SCAN_EXTS = (".cpp", ".cc", ".hpp", ".h")

CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "throw", "assert", "defined", "new", "delete", "not",
    "and", "or", "alignas", "decltype", "noexcept", "static_assert",
    "typeid", "case", "until",
}

TYPE_KEYWORDS = {
    "return", "throw", "delete", "new", "goto", "case", "else",
    "typename", "using", "typedef", "break", "continue", "public",
    "private", "protected", "co_return", "operator", "do",
}

_SYSCALL_ALT = "|".join(sorted(FAILURE_CAPABLE, key=len, reverse=True))
RE_SYSCALL = re.compile(r"::\s*(" + _SYSCALL_ALT + r")\s*\(")
RE_GUARD = re.compile(r"\b(?:dp\s*::\s*)?(LockGuard|UniqueLock)\s+"
                      r"(\w+)\s*([({])")
RE_WAIT = re.compile(r"\b(\w+)\s*\.\s*(wait(?:For|Until)?)\s*\(\s*"
                     r"(\w+)\s*[,)]")
RE_SITE_DECL = re.compile(r"\bFaultSite\s+(\w+)\s*([({])")
RE_SITE_CHECK = re.compile(r"\b(\w+)\s*\.\s*(shouldFail|orThrow)\s*\(")
RE_NEW = re.compile(r"\bnew\b")
RE_ALLOC_FN = re.compile(r"\b(malloc|calloc|realloc|aligned_alloc|"
                         r"strdup|to_string)\s*\(")
RE_CONTAINER_OP = re.compile(
    r"\b([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(push_back|emplace_back|emplace|emplace_front|push_front|insert|"
    r"resize|reserve|assign|append|shrink_to_fit)\s*\(")
RE_CONTAINER_CTOR = re.compile(
    r"\b(?:std\s*::\s*)?(vector|basic_string|deque|list|map|set|"
    r"unordered_map|unordered_set|ostringstream|stringstream|string)"
    r"\b\s*(?:<[^;{}]*?>)?\s+(\w+)\s*[({]\s*[^)\s};]")
RE_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
RE_LOCAL_DECL = re.compile(
    r"\b(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<[^;{}()]*>)?)\s*"
    r"[&*]?\s+([A-Za-z_]\w*)\s*[=;({]")
RE_MUTEX_MEMBER = re.compile(r"\b(?:dp\s*::\s*)?Mutex\s+(\w+)")
RE_MEMBER_DECL = re.compile(
    r"(?:^|(?<=[;{}]))\s*(?:mutable\s+|static\s+|const\s+)*"
    r"([A-Za-z_][\w:]*(?:\s*<[^;]*?>)?)\s*([&*]?)\s*(\w+)\s*"
    r"(?:DP_\w+(?:\([^)]*\))?\s*)?(?:=[^;]*|\{[^;]*\})?;")
RE_ANNOTATION = re.compile(
    r"//\s*dp-analyze:\s*(hot|cold)\b(?:\s+scratch=(\w+))?")
RE_ALLOW = re.compile(r"//\s*dp-analyze:\s*allow\((DPA\d{3})\)")
RE_ACCUMULATE = re.compile(
    r"\b(?:std\s*::\s*)?accumulate\s*\(\s*([\w.\->]+?)\s*"
    r"(?:\.|->)\s*c?begin\s*\(")
RE_RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*"
    r"(?:\[[^\]]*\]|\w+)\s*:\s*([\w.\->]+)\s*\)")
RE_COMPOUND = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*([+\-*/|&^])=(?!=)")
RE_PARALLEL = re.compile(r"\bparallelFor\w*\s*\(")


class Aux:
    """Cross-file symbol tables collected in pass 1, consumed by the
    lock-resolution pass and the checkers."""

    def __init__(self) -> None:
        # class -> set of dp::Mutex member names
        self.mutex_members: dict[str, set[str]] = {}
        # mutex member name -> set of owning classes
        self.mutex_owner: dict[str, set[str]] = {}
        # (class, member) -> member type base name
        self.member_types: dict[tuple[str, str], str] = {}
        # file-scope `Mutex g;` declarations
        self.global_mutexes: set[str] = set()
        # id(Func) -> {var -> type base}
        self.func_vars: dict[int, dict[str, str]] = {}
        # repo-relative path -> original source text
        self.sources: dict[str, str] = {}
        # repo-relative path -> stripped+masked text (for checkers)
        self.stripped: dict[str, str] = {}


def base_type(t: str) -> str:
    """`std::unique_ptr<serve::Metrics>` -> `Metrics` etc."""
    t = t.strip()
    m = re.match(r"(?:std\s*::\s*)?(?:unique_ptr|shared_ptr|optional)"
                 r"\s*<\s*([^<>,]+?)\s*[>,]", t)
    if m:
        t = m.group(1)
    t = re.sub(r"<.*", "", t).strip()
    t = t.rstrip("&* ")
    return t.split("::")[-1]


def mask_preprocessor(stripped: str) -> str:
    """Blanks preprocessor lines (including continuations) so includes
    and macro definitions cannot unbalance brace/paren tracking."""
    lines = stripped.split("\n")
    cont = False
    for k, ln in enumerate(lines):
        if cont or ln.lstrip().startswith("#"):
            cont = ln.rstrip().endswith("\\")
            lines[k] = " " * len(ln)
        else:
            cont = False
    return "\n".join(lines)


def top_level_text(stripped: str, lo: int, hi: int) -> str:
    """The text of [lo, hi) with every nested brace region blanked —
    used to scan class member declarations without seeing inline
    method bodies."""
    out: list[str] = []
    depth = 0
    for i in range(lo, hi):
        c = stripped[i]
        if c == "{":
            depth += 1
            out.append(" ")
        elif c == "}":
            depth = max(0, depth - 1)
            out.append(" ")
        elif depth == 0:
            out.append(c)
        else:
            out.append("\n" if c == "\n" else " ")
    return "".join(out)


def _first_arg(expr: str) -> str:
    depth = 0
    for i, c in enumerate(expr):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == "," and depth == 0:
            return expr[:i].strip()
    return expr.strip()


def _mask_angles(head: str) -> str:
    """Blanks simple template-argument regions so the first '(' found
    afterwards belongs to a parameter list, not to `void()` inside a
    template argument."""
    out = list(head)
    i = 0
    while i < len(head):
        if head[i] == "<" and i > 0 and (head[i - 1].isalnum()
                                         or head[i - 1] == "_"):
            depth = 1
            j = i + 1
            while j < len(head) and depth > 0:
                if head[j] == "<":
                    depth += 1
                elif head[j] == ">":
                    depth -= 1
                elif head[j] not in " \t\n,:*&<>[]()" \
                        and not (head[j].isalnum() or head[j] in "_:"):
                    break  # not a template-arg region after all
                j += 1
            if depth == 0:
                for k in range(i, j):
                    if out[k] != "\n":
                        out[k] = " "
                i = j
                continue
        i += 1
    return "".join(out)


def _func_from_head(head: str):
    """(qualified_name, params_text) for a function-definition head, or
    (None, None)."""
    if re.search(r"(?<![=!<>+\-*/&|^])=(?!=)", _mask_angles(head)) \
            and "operator" not in head:
        return None, None  # initializer, not a definition
    masked = _mask_angles(head)
    lp = masked.find("(")
    if lp == -1:
        return None, None
    m = re.search(r"(operator\s*[^\s(]+|[\w:~]+)\s*$", head[:lp])
    if not m:
        return None, None
    qual = m.group(1).replace(" ", "")
    name = qual.split("::")[-1]
    if name in CALL_KEYWORDS or name in TYPE_KEYWORDS:
        return None, None
    if name.startswith("DP_") and name.isupper():
        return None, None
    rp = lex.match_paren(head, lp)
    params = head[lp + 1:rp] if rp < len(head) else ""
    return qual, params


class _Parser:
    def __init__(self, rel: str, text: str, aux: Aux):
        self.rel = rel
        self.text = text
        self.aux = aux
        stripped = lex.strip_comments_and_strings(text)
        self.stripped = mask_preprocessor(stripped)
        self.braces = lex.build_brace_index(self.stripped)
        self.funcs: list[Func] = []
        aux.sources[rel] = text
        aux.stripped[rel] = self.stripped

    def parse(self) -> FileModel:
        self._scan(0, len(self.stripped), [], None)
        self._attach_annotations()
        # File-scope mutexes: everything outside class bodies was
        # already collected per-scan-level in _scan.
        return FileModel(path=self.rel, funcs=self.funcs)

    # -- structure ----------------------------------------------------

    def _scan(self, lo: int, hi: int, ns: list[str], cls: str | None):
        s = self.stripped
        top = top_level_text(s, lo, hi)
        if cls is None:
            for m in re.finditer(r"\bMutex\s+(\w+)\s*;",
                                 top_level_text(s, lo, hi)):
                self.aux.global_mutexes.add(m.group(1))
        i = lo
        boundary = lo
        while i < hi:
            c = s[i]
            if c in ";}":
                boundary = i + 1
                i += 1
                continue
            if c == "(":
                i = lex.match_paren(s, i) + 1
                continue
            if c != "{":
                i += 1
                continue
            close = self.braces.get(i, hi)
            head = s[boundary:i]
            self._classify(head, boundary, i, close, ns, cls)
            i = close + 1
            boundary = i
        if cls is not None:
            self._scan_members(cls, top)

    def _classify(self, head: str, head_lo: int, open_br: int,
                  close_br: int, ns: list[str], cls: str | None):
        hs = head.strip()
        if not hs or hs in ("try", "do", "else"):
            self._scan(open_br + 1, close_br, ns, cls)
            return
        if "(" not in hs and re.search(r"\bnamespace\b", hs):
            m = re.search(r"namespace\s+([\w:]+)?\s*$", hs)
            name = (m.group(1) if m and m.group(1) else "<anon>")
            self._scan(open_br + 1, close_br,
                       ns + name.split("::"), None)
            return
        if re.search(r"\benum\b", hs):
            return
        if hs == "extern":  # extern "C" with the literal stripped
            self._scan(open_br + 1, close_br, ns, cls)
            return
        cm = re.search(r"(?:\bclass\b|\bstruct\b|\bunion\b)\s*"
                       r"(?:\[\[[^\]]*\]\]\s*)?((?:\w+\s*::\s*)*\w+)?"
                       r"\s*(?:final\s*)?(?::[^:(][^()]*)?$", hs)
        if cm:
            name = cm.group(1)
            name = re.split(r"\s*::\s*", name)[-1] if name else "<anon>"
            self._scan(open_br + 1, close_br, ns, name)
            return
        qual, params = _func_from_head(hs)
        if qual is None:
            # Unrecognized block (macro expansion, array init without
            # '='): still walk it for nested definitions.
            self._scan(open_br + 1, close_br, ns, cls)
            return
        parts = qual.split("::")
        name = parts[-1]
        fcls = cls
        if fcls is None and len(parts) >= 2 and parts[-2] \
                and parts[-2][0].isupper():
            fcls = parts[-2]
        nonws = head_lo + (len(head) - len(head.lstrip()))
        fn = Func(name=name, cls=fcls, ns="::".join(ns), file=self.rel,
                  line=lex.line_of(self.stripped, nonws),
                  end_line=lex.line_of(self.stripped, close_br))
        self._extract_events(fn, open_br + 1, close_br, params or "")
        self.funcs.append(fn)

    def _scan_members(self, cls: str, top: str):
        mm = self.aux.mutex_members.setdefault(cls, set())
        for m in RE_MUTEX_MEMBER.finditer(top):
            mm.add(m.group(1))
            self.aux.mutex_owner.setdefault(m.group(1), set()).add(cls)
        for m in RE_MEMBER_DECL.finditer(top):
            t, member = m.group(1), m.group(3)
            if t in TYPE_KEYWORDS or member in TYPE_KEYWORDS:
                continue
            self.aux.member_types.setdefault((cls, member),
                                             base_type(t))

    # -- events -------------------------------------------------------

    def _extract_events(self, fn: Func, lo: int, hi: int, params: str):
        s = self.stripped
        body = s[lo:hi]
        vartypes: dict[str, str] = {}
        for p in self._split_params(params):
            pm = re.search(r"([\w:<>]+)\s*[&*]?\s*(\w+)\s*$", p)
            if pm and pm.group(1) not in TYPE_KEYWORDS:
                vartypes[pm.group(2)] = base_type(pm.group(1))
        for m in re.finditer(r"\b(\w+)\s*=\s*(?:std\s*::\s*)?"
                             r"make_(?:shared|unique)\s*<\s*([\w:]+)",
                             body):
            vartypes.setdefault(m.group(1), base_type(m.group(2)))
        for m in re.finditer(r"\bfor\s*\(\s*(?:const\s+)?"
                             r"([A-Za-z_][\w:]*(?:<[^;{}]*>)?)\s*"
                             r"[&*]{0,2}\s*(\w+)\s*:", body):
            if m.group(1) not in ("auto", "const"):
                vartypes.setdefault(m.group(2), base_type(m.group(1)))
        for m in RE_LOCAL_DECL.finditer(body):
            t, v = m.group(1), m.group(2)
            if t in TYPE_KEYWORDS or t in CALL_KEYWORDS or t == "auto":
                continue
            vartypes.setdefault(v, base_type(t))
        self.aux.func_vars[id(fn)] = vartypes

        regions = self._parallel_regions(lo, hi)

        def in_parallel(off: int) -> bool:
            return any(a <= off < b for _, a, b in regions)

        for m in RE_GUARD.finditer(body):
            off = lo + m.start()
            opener = lo + m.end() - 1
            if m.group(3) == "(":
                closer = lex.match_paren(s, opener)
            else:
                closer = self.braces.get(opener, hi)
            expr = _first_arg(s[opener + 1:closer])
            rel_off = lex.enclosing_scope_end(self.braces, s, off)
            fn.acquires.append(Acquire(
                line=lex.line_of(s, off), lock="", expr=expr,
                var=m.group(2), via=m.group(1),
                release_line=lex.line_of(s, rel_off)))
        for m in RE_WAIT.finditer(body):
            fn.waits.append(Wait(line=lex.line_of(s, lo + m.start()),
                                 cv=m.group(1), lock=m.group(3)))
        for m in RE_SITE_DECL.finditer(body):
            opener = lo + m.end() - 1
            closer = (lex.match_paren(s, opener)
                      if m.group(2) == "(" else self.braces.get(opener,
                                                                hi))
            lit = re.search(r'"([^"]*)"', self.text[opener:closer + 1])
            fn.site_decls.append(SiteDecl(
                line=lex.line_of(s, lo + m.start()), var=m.group(1),
                site=lit.group(1) if lit else "?"))
        decl_names = {d.var: d.site for d in fn.site_decls}
        for m in RE_SITE_CHECK.finditer(body):
            fn.site_checks.append(SiteCheck(
                line=lex.line_of(s, lo + m.start()), var=m.group(1),
                site=decl_names.get(m.group(1), "?")))
        for m in RE_SYSCALL.finditer(body):
            fn.syscalls.append(Syscall(
                line=lex.line_of(s, lo + m.start()), name=m.group(1)))
        self._extract_allocs(fn, body, lo)
        self._extract_calls(fn, body, lo, in_parallel)
        self._extract_float(fn, body, lo, regions, vartypes)

    @staticmethod
    def _split_params(params: str) -> list[str]:
        out, depth, cur = [], 0, []
        for c in params:
            if c in "(<[{":
                depth += 1
            elif c in ")>]}":
                depth -= 1
            if c == "," and depth == 0:
                out.append("".join(cur))
                cur = []
            else:
                cur.append(c)
        if cur:
            out.append("".join(cur))
        return out

    def _stmt_head(self, body: str, off: int) -> str:
        b = max(body.rfind(";", 0, off), body.rfind("{", 0, off),
                body.rfind("}", 0, off))
        return body[b + 1:off]

    def _extract_allocs(self, fn: Func, body: str, lo: int):
        s = self.stripped

        def add(off: int, what: str, obj: str | None):
            stmt = self._stmt_head(body, off)
            fn.allocs.append(Alloc(
                line=lex.line_of(s, lo + off), what=what, obj=obj,
                in_throw=bool(re.search(r"\bthrow\b", stmt))))

        for m in RE_NEW.finditer(body):
            add(m.start(), "new", None)
        for m in RE_ALLOC_FN.finditer(body):
            add(m.start(), m.group(1), None)
        for m in RE_CONTAINER_OP.finditer(body):
            chain = re.split(r"\.|->", m.group(1))[0]
            add(m.start(), m.group(2), chain)
        for m in RE_CONTAINER_CTOR.finditer(body):
            add(m.start(), f"{m.group(1)} constructor", m.group(2))

    def _extract_calls(self, fn: Func, body: str, lo: int, in_parallel):
        for m in RE_CALL.finditer(body):
            name = m.group(1)
            if name in CALL_KEYWORDS or name in TYPE_KEYWORDS:
                continue
            j = m.start() - 1
            while j >= 0 and body[j] in " \t\n":
                j -= 1
            obj = None
            if j >= 0 and body[j] == "." and (j == 0
                                              or not body[j - 1].isdigit()):
                obj = self._ident_before(body, j - 1)
            elif j >= 1 and body[j] == ">" and body[j - 1] == "-":
                obj = self._ident_before(body, j - 2)
            elif j >= 1 and body[j] == ":" and body[j - 1] == ":":
                q = self._ident_before(body, j - 2)
                if q is None:
                    continue  # `::open(` — a raw syscall, not a call
            fn.calls.append(Call(line=lex.line_of(self.stripped,
                                                  lo + m.start()),
                                 callee=name, obj=obj,
                                 in_parallel=in_parallel(lo + m.start())))

    @staticmethod
    def _ident_before(body: str, j: int) -> str | None:
        while j >= 0 and body[j] in " \t\n":
            j -= 1
        k = j
        while k >= 0 and (body[k].isalnum() or body[k] == "_"):
            k -= 1
        ident = body[k + 1:j + 1]
        return ident or None

    def _parallel_regions(self, lo: int, hi: int):
        """[(params_start, body_start, body_end)] of parallelFor lambda
        bodies within [lo, hi), absolute offsets."""
        s = self.stripped
        regions = []
        for m in RE_PARALLEL.finditer(s, lo, hi):
            call_open = m.end() - 1
            call_close = lex.match_paren(s, call_open)
            lb = s.find("[", call_open, call_close)
            if lb == -1:
                continue
            rb = s.find("]", lb, call_close)
            if rb == -1:
                continue
            k = rb + 1
            while k < call_close and s[k] in " \t\n":
                k += 1
            params_start = k
            if k < call_close and s[k] == "(":
                k = lex.match_paren(s, k) + 1
            while k < call_close and s[k] != "{":
                k += 1
            if k >= call_close:
                continue
            regions.append((params_start, k + 1,
                            self.braces.get(k, call_close)))
        return regions

    def _extract_float(self, fn: Func, body: str, lo: int, regions,
                       vartypes: dict[str, str]):
        s = self.stripped

        def is_float(name: str) -> bool:
            return vartypes.get(name) in ("float", "double")

        for params_start, b_lo, b_hi in regions:
            lam = s[params_start:b_hi]
            for m in RE_COMPOUND.finditer(s, b_lo, b_hi):
                lhs = m.group(1)
                declared = bool(re.search(
                    r"(?:^|[;{(,\[])\s*(?:const\s+)?"
                    r"[A-Za-z_][\w:]*(?:<[^;{}]*>)?\s*[&*]?\s+"
                    + re.escape(lhs) + r"\s*[=;,){(\[]", lam))
                fn.reduces.append(Reduce(
                    line=lex.line_of(s, m.start()), lhs=lhs,
                    op=m.group(2), is_float=is_float(lhs),
                    captured=not declared, in_parallel=True))
        file_text = self.aux.stripped[self.rel]

        def unordered(container: str) -> bool:
            base = re.split(r"\.|->", container)[0]
            if vartypes.get(base, "").startswith("unordered_"):
                return True
            return bool(re.search(
                r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*"
                r"[&*]?\s*" + re.escape(base) + r"\b", file_text))

        for m in RE_ACCUMULATE.finditer(body):
            fn.accumulates.append(Accumulate(
                line=lex.line_of(s, lo + m.start()),
                container=m.group(1),
                container_unordered=unordered(m.group(1))))
        for m in RE_RANGE_FOR.finditer(body):
            if not unordered(m.group(1)):
                continue
            k = lo + m.end()
            while k < len(s) and s[k] in " \t\n":
                k += 1
            if k < len(s) and s[k] == "{":
                f_lo, f_hi = k + 1, self.braces.get(k, k + 1)
            else:
                semi = s.find(";", k)
                f_lo, f_hi = k, (semi if semi != -1 else k)
            for cm in RE_COMPOUND.finditer(s, f_lo, f_hi):
                if is_float(cm.group(1)):
                    fn.unordered_folds.append(UnorderedFloatFold(
                        line=lex.line_of(s, cm.start()),
                        container=m.group(1)))
                    break

    # -- annotations --------------------------------------------------

    def _attach_annotations(self):
        anns = []
        for ln, line in enumerate(self.text.split("\n"), start=1):
            m = RE_ANNOTATION.search(line)
            if m:
                anns.append((ln, m.group(1), m.group(2)))
        by_line = sorted(self.funcs, key=lambda f: f.line)
        for ln, kind, scratch in anns:
            target = None
            for f in by_line:
                if ln <= f.line <= ln + 4:
                    target = f
                    break
            if target is None:
                for f in by_line:
                    if f.line <= ln <= f.end_line:
                        target = f
                        break
            if target is None:
                continue
            if kind == "hot":
                target.hot = True
                if scratch:
                    target.scratch.add(scratch)
            else:
                target.cold = True


def parse_source(rel: str, text: str, aux: Aux) -> FileModel:
    return _Parser(rel, text, aux).parse()


def parse_source_ex(rel: str, text: str, aux: Aux):
    """(FileModel, parser) — the clang frontend reuses the parser's
    event extractor for functions it discovers beyond the lite scan."""
    p = _Parser(rel, text, aux)
    return p.parse(), p


def filter_allowed(findings, sources: dict[str, str]):
    """Drops findings escaped with `// dp-analyze: allow(DPAxxx)` on
    the finding line or the line above."""
    out = []
    cache: dict[str, list[str]] = {}
    for f in findings:
        text = sources.get(f.path)
        if text is None:
            out.append(f)
            continue
        lines = cache.setdefault(f.path, text.split("\n"))
        allowed = False
        for ln in (f.line, f.line - 1):
            if 1 <= ln <= len(lines):
                m = RE_ALLOW.search(lines[ln - 1])
                if m and m.group(1) == f.rule:
                    allowed = True
        if not allowed:
            out.append(f)
    return out


def iter_source_files(root: Path):
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SCAN_EXTS and p.is_file():
                yield p


def parse_tree(root: Path, paths=None):
    """(models, aux) for the whole tree (or an explicit path list)."""
    aux = Aux()
    models = []
    files = (sorted(paths) if paths is not None
             else list(iter_source_files(root)))
    for p in files:
        rel = p.resolve().relative_to(root.resolve()).as_posix() \
            if p.resolve().is_relative_to(root.resolve()) \
            else p.as_posix()
        text = p.read_text(encoding="utf-8", errors="replace")
        models.append(parse_source(rel, text, aux))
    resolve_locks(models, aux)
    return models, aux


def resolve_locks(models: list[FileModel], aux: Aux) -> None:
    """Pass 2: canonicalize Acquire.lock / Wait.lock ids now that the
    cross-file mutex-member tables are complete."""
    for fm in models:
        for fn in fm.funcs:
            vartypes = aux.func_vars.get(id(fn), {})
            for a in fn.acquires:
                a.lock = _lock_id(a.expr, fn, aux, vartypes)
            for w in fn.waits:
                # Innermost guard with the named var held at the wait
                # line; guard names like `lock` are reused per-scope.
                cands = [a for a in fn.acquires if a.var == w.lock
                         and a.line <= w.line <= a.release_line]
                g = max(cands, key=lambda a: a.line, default=None)
                w.lock = g.lock if g else "?"


def _lock_id(expr: str, fn: Func, aux: Aux,
             vartypes: dict[str, str]) -> str:
    e = expr.strip().lstrip("*&").strip()
    if e.startswith("this->"):
        e = e[len("this->"):]
    parts = re.split(r"\.|->", e)
    if len(parts) == 1:
        m = parts[0]
        if not re.fullmatch(r"\w+", m):
            return f"?::{m or 'unknown'}"
        if fn.cls and m in aux.mutex_members.get(fn.cls, ()):
            return f"{fn.cls}::{m}"
        t = vartypes.get(m)
        if t == "Mutex":
            return f"{fn.file}:{fn.name}::{m}"
        if m in aux.global_mutexes:
            return f"::{m}"
        owners = aux.mutex_owner.get(m, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{m}"
        return f"?::{m}"
    base = parts[0]
    member = parts[-1]
    bt = vartypes.get(base)
    if bt is None and fn.cls:
        bt = aux.member_types.get((fn.cls, base))
    if bt and member in aux.mutex_members.get(bt, ()):
        return f"{bt}::{member}"
    owners = aux.mutex_owner.get(member, set())
    if len(owners) == 1:
        return f"{next(iter(owners))}::{member}"
    return f"?::{member}"
