"""DPA101 — lock-order analysis.

Builds the global dp::Mutex acquisition graph: an edge A -> B means
some thread can block on B while holding A. Three edge kinds:

  nest   LockGuard/UniqueLock for B taken inside the guard scope of A
         (same function).
  call   a function called while holding A may (transitively) acquire
         B — this is what catches cross-TU inversions.
  wait   CondVar::wait on B's guard while still holding A: the waiter
         re-acquires B on wakeup with A held.

Findings: any cycle in the graph (SCC of size > 1), recursive
acquisition of the same lock on one path (direct nest/wait evidence
only — call-graph self edges are suppressed because name-based callee
resolution cannot prove the receiver is the same object), a CondVar
wait parked while holding a foreign lock that is acquired in more
than one function (single-site serialization mutexes are exempt: a
concurrent caller just queues, and any real inversion through them is
still a cycle), and a stale committed tools/lock_order.json.

Lock ids beginning with '?' could not be resolved to a unique owner;
they are listed in the emitted JSON under "unresolved" but excluded
from the graph so an ambiguous member name cannot fabricate a cycle.
"""

from __future__ import annotations

import json

from .model import FileModel, Finding, Func, Index

RULE = "DPA101"


def _acquired_closure(index: Index) -> dict[int, set[str]]:
    memo: dict[int, set[str]] = {}

    def visit(f: Func, stack: set[int]) -> set[str]:
        if id(f) in memo:
            return memo[id(f)]
        if id(f) in stack:
            return set()
        stack.add(id(f))
        got = {a.lock for a in f.acquires if not a.lock.startswith("?")}
        for w in f.waits:
            if w.lock != "?" and not w.lock.startswith("?"):
                got.add(w.lock)
        for c in f.calls:
            for g in index.resolve(c, f):
                got |= visit(g, stack)
        stack.discard(id(f))
        memo[id(f)] = got
        return got

    for fm in index.files:
        for f in fm.funcs:
            visit(f, set())
    return memo


def build_graph(models: list[FileModel]):
    """(edges, findings_for_recursive_acquisition). edges maps
    (from, to) -> {"kinds": set, "sites": set}."""
    index = Index(models)
    closure = _acquired_closure(index)
    edges: dict[tuple[str, str], dict] = {}
    findings: list[Finding] = []
    # lock id -> functions that acquire it. A lock acquired in exactly
    # one function is a serialization mutex: holding it across a wait
    # just queues concurrent callers and cannot invert (any real cycle
    # through it is still caught by the SCC pass), so the
    # wait-while-holding finding below skips those.
    acquirers: dict[str, set[int]] = {}
    for fm in models:
        for f in fm.funcs:
            for a in f.acquires:
                if not a.lock.startswith("?"):
                    acquirers.setdefault(a.lock, set()).add(id(f))

    def add(a: str, b: str, kind: str, site: str):
        e = edges.setdefault((a, b), {"kinds": set(), "sites": set()})
        e["kinds"].add(kind)
        e["sites"].add(site)

    for fm in models:
        for f in fm.funcs:
            for a in f.acquires:
                if a.lock.startswith("?"):
                    continue
                for h in f.held_at(a.line):
                    if h.lock.startswith("?"):
                        continue
                    site = f"{f.file}:{a.line}"
                    if h.lock == a.lock:
                        findings.append(Finding(
                            RULE, f.file, a.line,
                            f"'{a.lock}' re-acquired at {site} while "
                            f"already held (acquired line {h.line}) — "
                            "dp::Mutex is not recursive"))
                    else:
                        add(h.lock, a.lock, "nest", site)
            for w in f.waits:
                if w.lock == "?" or w.lock.startswith("?"):
                    continue
                for h in f.held_at(w.line):
                    if h.lock.startswith("?") or h.lock == w.lock:
                        continue
                    site = f"{f.file}:{w.line}"
                    add(h.lock, w.lock, "wait", site)
                    if len(acquirers.get(h.lock, ())) > 1:
                        findings.append(Finding(
                            RULE, f.file, w.line,
                            f"CondVar::wait on '{w.lock}' while "
                            f"holding '{h.lock}' (acquired line "
                            f"{h.line}): the waiter parks with a "
                            "foreign lock held"))
            for c in f.calls:
                held = [h for h in f.held_at(c.line)
                        if not h.lock.startswith("?")]
                if not held:
                    continue
                for g in index.resolve(c, f):
                    for lock in closure.get(id(g), ()):
                        for h in held:
                            if h.lock != lock:
                                add(h.lock, lock, "call",
                                    f"{f.file}:{c.line}")
    return edges, findings


def _cycles(edges) -> list[list[str]]:
    """SCCs of size > 1 (Tarjan, iterative)."""
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    idx: dict[str, int] = {}
    low: dict[str, int] = {}
    on: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in idx:
            continue
        work = [(root, iter(sorted(graph[root])))]
        idx[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in idx:
                    idx[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on:
                    low[v] = min(low[v], idx[w])
            if advanced:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == idx[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    out.append(sorted(scc))
    return out


def render_json(edges, models: list[FileModel]) -> str:
    """Deterministic lock_order.json text."""
    locks = sorted(
        {a for a, _ in edges} | {b for _, b in edges}
        | {a.lock for fm in models for f in fm.funcs
           for a in f.acquires if not a.lock.startswith("?")})
    unresolved = sorted({
        a.lock for fm in models for f in fm.funcs for a in f.acquires
        if a.lock.startswith("?")})
    doc = {
        "comment": "generated by tools/dp_analyze (DPA101); "
                   "regenerate with --emit-lock-order",
        "locks": locks,
        "edges": [
            {"from": a, "to": b,
             "kinds": sorted(e["kinds"]),
             "sites": sorted(e["sites"])[:6]}
            for (a, b), e in sorted(edges.items())
        ],
        "unresolved": unresolved,
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def check(models: list[FileModel], committed_json: str | None = None,
          json_path: str = "tools/lock_order.json"):
    """(findings, generated_json_text)."""
    edges, findings = build_graph(models)
    for scc in _cycles(edges):
        sites = sorted({s for (a, b), e in edges.items()
                        if a in scc and b in scc
                        for s in e["sites"]})[:8]
        findings.append(Finding(
            RULE, json_path, 1,
            "lock-order cycle: " + " <-> ".join(scc)
            + " (sites: " + ", ".join(sites) + ")"))
    generated = render_json(edges, models)
    if committed_json is not None and committed_json != generated:
        findings.append(Finding(
            RULE, json_path, 1,
            "committed lock_order.json is stale — regenerate with "
            "`python3 tools/dp_analyze --emit-lock-order "
            + json_path + "`"))
    return findings, generated
